type case = { name : string; source : string; entry : string; args : int list }

let mk name ?(entry = "main") ?(args = []) source = { name; source; entry; args }

(* ------------------------------------------------------------------ *)
(* Regression cases                                                     *)

let arith_basic =
  mk "arith_basic"
    {|
func @main() {
entry:
  %r0 = mov 21
  %r1 = mov 4
  %r2 = add %r0, %r1
  print %r2
  %r3 = sub %r0, %r1
  print %r3
  %r4 = mul %r0, %r1
  print %r4
  %r5 = div %r0, %r1
  print %r5
  %r6 = rem %r0, %r1
  print %r6
  ret 0
}
|}

let arith_bitwise =
  mk "arith_bitwise"
    {|
func @main() {
entry:
  %r0 = mov 204
  %r1 = mov 170
  %r2 = and %r0, %r1
  print %r2
  %r3 = or %r0, %r1
  print %r3
  %r4 = xor %r0, %r1
  print %r4
  %r5 = shl %r0, 3
  print %r5
  %r6 = shr %r0, 2
  print %r6
  ret 0
}
|}

let arith_imm_small =
  mk "arith_imm_small"
    {|
func @main() {
entry:
  %r0 = mov 100
  %r1 = add %r0, 27
  print %r1
  %r2 = and %r1, 15
  print %r2
  %r3 = or %r2, 96
  print %r3
  %r4 = slt %r2, 8
  print %r4
  ret 0
}
|}

let arith_imm_large =
  mk "arith_imm_large"
    {|
func @main() {
entry:
  %r0 = mov 7
  %r1 = add %r0, 100000
  print %r1
  %r2 = mov 1048575
  print %r2
  %r3 = add %r2, 123456
  print %r3
  ret 0
}
|}

let negatives =
  mk "negatives"
    {|
func @main() {
entry:
  %r0 = mov -5
  %r1 = add %r0, -10
  print %r1
  %r2 = mul %r1, -3
  print %r2
  %r3 = slt %r1, 0
  print %r3
  ret 0
}
|}

let branches =
  mk "branches"
    {|
func @main() {
entry:
  %r0 = mov 5
  breq %r0, 5, yes1, no1
yes1:
  print 1
  br t2
no1:
  print 0
  br t2
t2:
  brne %r0, 4, yes2, no2
yes2:
  print 1
  br t3
no2:
  print 0
  br t3
t3:
  brlt %r0, 9, yes3, no3
yes3:
  print 1
  br t4
no3:
  print 0
  br t4
t4:
  brge %r0, 5, yes4, done
yes4:
  print 1
  br done
done:
  ret 0
}
|}

let loop_sum =
  mk "loop_sum"
    {|
func @main() {
entry:
  %r0 = mov 0
  %r1 = mov 1
  br loop
loop:
  %r0 = add %r0, %r1
  %r1 = add %r1, 1
  brlt %r1, 11, loop, done
done:
  print %r0
  ret %r0
}
|}

let nested_loops =
  mk "nested_loops"
    {|
func @main() {
entry:
  %r0 = mov 0
  %r1 = mov 0
  br outer
outer:
  %r2 = mov 0
  br inner
inner:
  %r0 = add %r0, 1
  %r2 = add %r2, 1
  brlt %r2, 4, inner, inext
inext:
  %r1 = add %r1, 1
  brlt %r1, 3, outer, done
done:
  print %r0
  ret 0
}
|}

let calls_simple =
  mk "calls_simple"
    {|
func @double(%r0) {
entry:
  %r1 = add %r0, %r0
  ret %r1
}
func @main() {
entry:
  %r0 = call @double(21)
  print %r0
  %r1 = call @double(%r0)
  print %r1
  ret 0
}
|}

let calls_many_args =
  mk "calls_many_args"
    {|
func @sum9(%r0, %r1, %r2, %r3, %r4, %r5, %r6, %r7, %r8) {
entry:
  %r9 = add %r0, %r1
  %r9 = add %r9, %r2
  %r9 = add %r9, %r3
  %r9 = add %r9, %r4
  %r9 = add %r9, %r5
  %r9 = add %r9, %r6
  %r9 = add %r9, %r7
  %r9 = add %r9, %r8
  ret %r9
}
func @main() {
entry:
  %r0 = call @sum9(1, 2, 3, 4, 5, 6, 7, 8, 9)
  print %r0
  ret 0
}
|}

let recursion_fib =
  mk "recursion_fib"
    {|
func @fib(%r0) {
entry:
  brlt %r0, 2, base, rec
base:
  ret %r0
rec:
  %r1 = sub %r0, 1
  %r2 = call @fib(%r1)
  %r3 = sub %r0, 2
  %r4 = call @fib(%r3)
  %r5 = add %r2, %r4
  ret %r5
}
func @main() {
entry:
  %r0 = call @fib(12)
  print %r0
  ret 0
}
|}

let globals_array =
  mk "globals_array"
    {|
global @data[8] = {3, 1, 4, 1, 5, 9, 2, 6}
func @main() {
entry:
  %r0 = addr @data
  %r1 = mov 0
  %r2 = mov 0
  br loop
loop:
  %r3 = shl %r2, 2
  %r4 = add %r0, %r3
  %r5 = load %r4, 0
  %r1 = add %r1, %r5
  %r2 = add %r2, 1
  brlt %r2, 8, loop, done
done:
  print %r1
  ret 0
}
|}

let memory_store =
  mk "memory_store"
    {|
global @buf[4] = {0, 0, 0, 0}
func @main() {
entry:
  %r0 = addr @buf
  store 11, %r0, 0
  store 22, %r0, 4
  store 33, %r0, 8
  %r1 = load %r0, 4
  print %r1
  %r2 = load %r0, 0
  %r3 = load %r0, 8
  %r4 = add %r2, %r3
  print %r4
  ret 0
}
|}

let shifts_edge =
  mk "shifts_edge"
    {|
func @main() {
entry:
  %r0 = mov 1
  %r1 = shl %r0, 30
  print %r1
  %r2 = shr %r1, 15
  print %r2
  %r3 = mov -16
  %r4 = shr %r3, 28
  print %r4
  ret 0
}
|}

let div_chain =
  mk "div_chain"
    {|
func @main() {
entry:
  %r0 = mov 1000000
  br loop
loop:
  %r0 = div %r0, 3
  print %r0
  brlt %r0, 1, done, loop
done:
  ret 0
}
|}

let mul_add_chain =
  mk "mul_add_chain"
    {|
func @main() {
entry:
  %r0 = mov 0
  %r1 = mov 1
  br loop
loop:
  %r2 = mul %r1, %r1
  %r0 = add %r0, %r2
  %r1 = add %r1, 1
  brlt %r1, 9, loop, done
done:
  print %r0
  ret 0
}
|}

let cmp_branch_fuse =
  mk "cmp_branch_fuse"
    {|
func @main() {
entry:
  %r0 = mov 0
  %r1 = mov 0
  br loop
loop:
  %r2 = slt %r1, 50
  breq %r2, 0, done, body
body:
  %r0 = add %r0, %r1
  %r1 = add %r1, 3
  br loop
done:
  print %r0
  ret 0
}
|}

let vec_friendly =
  mk "vec_friendly"
    {|
global @a[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
global @b[16] = {16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
global @c[16] = {}
func @main() {
entry:
  %r0 = addr @a
  %r1 = addr @b
  %r2 = addr @c
  %r3 = mov 0
  br loop
loop:
  %r4 = shl %r3, 2
  %r5 = add %r0, %r4
  %r6 = load %r5, 0
  %r7 = add %r1, %r4
  %r8 = load %r7, 0
  %r9 = add %r6, %r8
  %r10 = add %r2, %r4
  store %r9, %r10, 0
  %r3 = add %r3, 1
  brlt %r3, 16, loop, check
check:
  %r11 = mov 0
  %r12 = mov 0
  br cloop
cloop:
  %r13 = shl %r12, 2
  %r14 = add %r2, %r13
  %r15 = load %r14, 0
  %r11 = add %r11, %r15
  %r12 = add %r12, 1
  brlt %r12, 16, cloop, done
done:
  print %r11
  ret 0
}
|}

(* Immediates straddling the 12-bit/16-bit legality boundary: folding
   decisions (isLegalAddImmediate / selectImmOpcode) become visible in the
   emitted artifacts. *)
let imm_range_probe =
  mk "imm_range_probe"
    {|
func @main() {
entry:
  %r0 = mov 5
  %r1 = add %r0, 1500
  print %r1
  %r2 = add %r1, 3000
  print %r2
  %r3 = add %r2, 20000
  print %r3
  %r4 = and %r3, 4000
  print %r4
  %r7 = add %r4, 20000
  print %r7
  %r5 = slt %r0, 2040
  print %r5
  %r6 = slt %r0, 30000
  print %r6
  ret 0
}
|}

(* A loop whose body is long enough that short-range conditional branches
   (AVR 7-bit, XCORE 10-bit) must be relaxed into an inverted branch plus
   a long jump. The body is generated straight-line code. *)
let relax_stress =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "func @main() {\nentry:\n  %r0 = mov 1\n  %r1 = mov 0\n  br loop\nloop:\n";
  for k = 0 to 139 do
    Buffer.add_string buf (Printf.sprintf "  %%r0 = add %%r0, %d\n" ((k mod 7) + 1));
    Buffer.add_string buf "  %r0 = xor %r0, 21\n"
  done;
  Buffer.add_string buf
    "  %r1 = add %r1, 1\n  brlt %r1, 3, loop, done\ndone:\n  print %r0\n  ret 0\n}\n";
  mk "relax_stress" (Buffer.contents buf)

let regression =
  [
    arith_basic;
    arith_bitwise;
    arith_imm_small;
    arith_imm_large;
    negatives;
    branches;
    loop_sum;
    nested_loops;
    calls_simple;
    calls_many_args;
    recursion_fib;
    globals_array;
    memory_store;
    shifts_edge;
    div_chain;
    mul_add_chain;
    cmp_branch_fuse;
    vec_friendly;
    imm_range_probe;
    relax_stress;
  ]

(* ------------------------------------------------------------------ *)
(* Benchmarks (Fig. 10 workloads)                                       *)

let bench_fib =
  mk "fib"
    {|
func @fib(%r0) {
entry:
  brlt %r0, 2, base, rec
base:
  ret %r0
rec:
  %r1 = sub %r0, 1
  %r2 = call @fib(%r1)
  %r3 = sub %r0, 2
  %r4 = call @fib(%r3)
  %r5 = add %r2, %r4
  ret %r5
}
func @main() {
entry:
  %r0 = call @fib(15)
  print %r0
  ret 0
}
|}

let bench_matmul =
  mk "matmul"
    {|
global @ma[64] = {}
global @mb[64] = {}
global @mc[64] = {}
func @main() {
entry:
  %r0 = addr @ma
  %r1 = addr @mb
  %r2 = addr @mc
  %r3 = mov 0
  br init
init:
  %r4 = shl %r3, 2
  %r5 = add %r0, %r4
  %r6 = and %r3, 7
  %r7 = add %r6, 1
  store %r7, %r5, 0
  %r8 = add %r1, %r4
  %r9 = shr %r3, 3
  %r10 = add %r9, 1
  store %r10, %r8, 0
  %r3 = add %r3, 1
  brlt %r3, 64, init, mm_i
mm_i:
  %r11 = mov 0
  br iloop
iloop:
  %r12 = mov 0
  br jloop
jloop:
  %r13 = mov 0
  %r14 = mov 0
  br kloop
kloop:
  %r15 = shl %r11, 3
  %r16 = add %r15, %r14
  %r17 = shl %r16, 2
  %r18 = add %r0, %r17
  %r19 = load %r18, 0
  %r20 = shl %r14, 3
  %r21 = add %r20, %r12
  %r22 = shl %r21, 2
  %r23 = add %r1, %r22
  %r24 = load %r23, 0
  %r25 = mul %r19, %r24
  %r13 = add %r13, %r25
  %r14 = add %r14, 1
  brlt %r14, 8, kloop, kdone
kdone:
  %r26 = shl %r11, 3
  %r27 = add %r26, %r12
  %r28 = shl %r27, 2
  %r29 = add %r2, %r28
  store %r13, %r29, 0
  %r12 = add %r12, 1
  brlt %r12, 8, jloop, jdone
jdone:
  %r11 = add %r11, 1
  brlt %r11, 8, iloop, sum
sum:
  %r30 = mov 0
  %r31 = mov 0
  br sloop
sloop:
  %r32 = shl %r31, 2
  %r33 = add %r2, %r32
  %r34 = load %r33, 0
  %r30 = add %r30, %r34
  %r31 = add %r31, 1
  brlt %r31, 64, sloop, done
done:
  print %r30
  ret 0
}
|}

let bench_crc =
  mk "crc32"
    {|
global @msg[16] = {72, 101, 108, 108, 111, 44, 32, 86, 69, 71, 65, 33, 33, 33, 49, 50}
func @main() {
entry:
  %r0 = addr @msg
  %r1 = mov -1
  %r2 = mov 0
  br byte_loop
byte_loop:
  %r3 = shl %r2, 2
  %r4 = add %r0, %r3
  %r5 = load %r4, 0
  %r1 = xor %r1, %r5
  %r6 = mov 0
  br bit_loop
bit_loop:
  %r7 = and %r1, 1
  %r8 = shr %r1, 1
  breq %r7, 0, noxor, doxor
doxor:
  %r1 = xor %r8, -306674912
  br bit_next
noxor:
  %r1 = mov %r8
  br bit_next
bit_next:
  %r6 = add %r6, 1
  brlt %r6, 8, bit_loop, byte_next
byte_next:
  %r2 = add %r2, 1
  brlt %r2, 16, byte_loop, done
done:
  print %r1
  ret 0
}
|}

let bench_sort =
  mk "bubble_sort"
    {|
global @arr[24] = {19, 3, 14, 7, 22, 1, 9, 16, 5, 11, 20, 2, 13, 8, 17, 4, 23, 6, 10, 15, 21, 12, 18, 24}
func @main() {
entry:
  %r0 = addr @arr
  %r1 = mov 0
  br outer
outer:
  %r2 = mov 0
  br inner
inner:
  %r3 = shl %r2, 2
  %r4 = add %r0, %r3
  %r5 = load %r4, 0
  %r6 = load %r4, 4
  brlt %r6, %r5, swap, noswap
swap:
  store %r6, %r4, 0
  store %r5, %r4, 4
  br inext
noswap:
  br inext
inext:
  %r2 = add %r2, 1
  brlt %r2, 23, inner, onext
onext:
  %r1 = add %r1, 1
  brlt %r1, 23, outer, verify
verify:
  %r7 = mov 0
  %r8 = mov 0
  br vloop
vloop:
  %r9 = shl %r8, 2
  %r10 = add %r0, %r9
  %r11 = load %r10, 0
  %r12 = mul %r11, %r8
  %r7 = add %r7, %r12
  %r8 = add %r8, 1
  brlt %r8, 24, vloop, done
done:
  print %r7
  ret 0
}
|}

let bench_dotprod =
  mk "dotprod"
    {|
global @va[32] = {}
global @vb[32] = {}
func @main() {
entry:
  %r0 = addr @va
  %r1 = addr @vb
  %r2 = mov 0
  br init
init:
  %r3 = shl %r2, 2
  %r4 = add %r0, %r3
  %r5 = add %r2, 3
  store %r5, %r4, 0
  %r6 = add %r1, %r3
  %r7 = sub 32, %r2
  store %r7, %r6, 0
  %r2 = add %r2, 1
  brlt %r2, 32, init, dot
dot:
  %r8 = mov 0
  %r9 = mov 0
  br dloop
dloop:
  %r10 = shl %r9, 2
  %r11 = add %r0, %r10
  %r12 = load %r11, 0
  %r13 = add %r1, %r10
  %r14 = load %r13, 0
  %r15 = mul %r12, %r14
  %r8 = add %r8, %r15
  %r9 = add %r9, 1
  brlt %r9, 32, dloop, done
done:
  print %r8
  ret 0
}
|}

let bench_fir =
  mk "fir_filter"
    {|
global @signal[40] = {}
global @coef[4] = {2, -1, 3, 1}
global @out[36] = {}
func @main() {
entry:
  %r0 = addr @signal
  %r1 = mov 0
  br init
init:
  %r2 = shl %r1, 2
  %r3 = add %r0, %r2
  %r4 = mul %r1, 7
  %r5 = and %r4, 31
  store %r5, %r3, 0
  %r1 = add %r1, 1
  brlt %r1, 40, init, fir
fir:
  %r6 = addr @coef
  %r7 = addr @out
  %r8 = mov 0
  br floop
floop:
  %r9 = mov 0
  %r10 = mov 0
  br tap
tap:
  %r11 = add %r8, %r10
  %r12 = shl %r11, 2
  %r13 = add %r0, %r12
  %r14 = load %r13, 0
  %r15 = shl %r10, 2
  %r16 = add %r6, %r15
  %r17 = load %r16, 0
  %r18 = mul %r14, %r17
  %r9 = add %r9, %r18
  %r10 = add %r10, 1
  brlt %r10, 4, tap, emit
emit:
  %r19 = shl %r8, 2
  %r20 = add %r7, %r19
  store %r9, %r20, 0
  %r8 = add %r8, 1
  brlt %r8, 36, floop, sum
sum:
  %r21 = mov 0
  %r22 = mov 0
  br sloop
sloop:
  %r23 = shl %r22, 2
  %r24 = add %r7, %r23
  %r25 = load %r24, 0
  %r21 = add %r21, %r25
  %r22 = add %r22, 1
  brlt %r22, 36, sloop, done
done:
  print %r21
  ret 0
}
|}

let bench_popcount =
  mk "popcount"
    {|
func @main() {
entry:
  %r0 = mov 0
  %r1 = mov 1
  br loop
loop:
  %r2 = mul %r1, 2654435761
  %r3 = mov 0
  %r4 = mov %r2
  br bits
bits:
  %r5 = and %r4, 1
  %r3 = add %r3, %r5
  %r4 = shr %r4, 1
  brne %r4, 0, bits, next
next:
  %r0 = add %r0, %r3
  %r1 = add %r1, 1
  brlt %r1, 40, loop, done
done:
  print %r0
  ret 0
}
|}

let bench_vecadd =
  mk "vecadd" vec_friendly.source

let benchmarks =
  [
    bench_fib;
    bench_matmul;
    bench_crc;
    bench_sort;
    bench_dotprod;
    bench_fir;
    bench_popcount;
    bench_vecadd;
  ]

let find name =
  List.find_opt (fun c -> c.name = name) (regression @ benchmarks)

let modul_of c = Vir_parser.parse c.source

let golden c =
  fst (Vir_interp.run (modul_of c) ~entry:c.entry ~args:c.args)
