(** One interface-function group: the standard compiler interface function
    (Fig. 1 of the paper) plus a generator producing the reference
    target-specific implementation from a profile.

    The generator output is executable by {!Vega_srclang.Interp}; the
    MiniLLVM backend calls these bodies as hooks, so the corpus is the
    behavioural ground truth that pass@1 measures against. *)

module P = Vega_target.Profile

type t = {
  module_ : Vega_target.Module_id.t;
  fname : string;
  cls : P.t -> string;  (** enclosing class, e.g. ARMELFObjectWriter *)
  ret : string;
  params : (string * string) list;  (** (type, name) *)
  applies : P.t -> bool;  (** does this target implement the function? *)
  body : P.t -> Vega_srclang.Ast.stmt list;
}

let mk ?(applies = fun (_ : P.t) -> true) ~module_ ~fname ~cls ~ret ~params body =
  { module_; fname; cls; ret; params; applies; body }

(** Render the reference implementation for one target, or [None] when the
    target does not implement the interface. *)
let render spec (p : P.t) =
  if not (spec.applies p) then None
  else
    Some
      {
        Vega_srclang.Ast.ret_type = spec.ret;
        cls = Some (spec.cls p);
        name = spec.fname;
        params =
          List.map
            (fun (ptype, pname) -> { Vega_srclang.Ast.ptype; pname })
            spec.params;
        body = spec.body p;
      }

(* ---------------------------------------------------------------- *)
(* Shared naming and numeric conventions                             *)

(** Canonical per-class instruction enum member, shared across targets
    (LLVM analogue: the TableGen-generated instruction enum). *)
let insn_enum (i : P.insn) =
  match (i.op_class, i.alu, i.cond) with
  | P.Alu, Some P.Add, _ -> "ADDrr"
  | P.Alu, Some P.Sub, _ -> "SUBrr"
  | P.Alu, Some P.And, _ -> "ANDrr"
  | P.Alu, Some P.Or, _ -> "ORrr"
  | P.Alu, Some P.Xor, _ -> "XORrr"
  | P.Alu, Some P.Shl, _ -> "SHLrr"
  | P.Alu, Some P.Shr, _ -> "SHRrr"
  | P.Alu, Some P.Slt, _ -> "SLTrr"
  | P.Alui, Some P.Add, _ -> "ADDri"
  | P.Alui, Some P.And, _ -> "ANDri"
  | P.Alui, Some P.Or, _ -> "ORri"
  | P.Alui, Some P.Shl, _ -> "SHLri"
  | P.Alui, Some P.Shr, _ -> "SHRri"
  | P.Alui, Some P.Slt, _ -> "SLTri"
  | P.Movi, _, _ -> "LIi"
  | P.Mov, _, _ -> "MOVrr"
  | P.Mul, _, _ -> "MULrr"
  | P.Div, _, _ -> "DIVrr"
  | P.Load, _, _ -> "LDri"
  | P.Store, _, _ -> "STri"
  | P.Branch, _, Some P.Ceq -> "BEQ"
  | P.Branch, _, Some P.Cne -> "BNE"
  | P.Branch, _, Some P.Clt -> "BLT"
  | P.Branch, _, Some P.Cge -> "BGE"
  | P.Jump, _, _ -> "JMP"
  | P.CallOp, _, _ -> "CALL"
  | P.Ret, _, _ -> "RET"
  | P.Nop, _, _ -> "NOP"
  | P.Madd, _, _ -> "MADDrr"
  | P.Vadd, _, _ -> "VADDrr"
  | P.Vmul, _, _ -> "VMULrr"
  | P.LoopSetup, _, _ -> "LPSETUP"
  | P.LoopEnd, _, _ -> "LPEND"
  | (P.Alu | P.Alui | P.Branch), _, _ -> invalid_arg "insn_enum: malformed insn"

(** Target-flavoured instruction enum member, derived from the target's
    own mnemonic the way real backends name their instructions (Mips's
    ADDU_RR vs RISCV's ADD_RR): this is what the corpus source code
    references and what VEGA must infer for a new target. The canonical
    {!insn_enum} stays in the EnumName record field, giving the
    target-independent framework its semantics key. *)
let insn_enum_t (_ : P.t) (i : P.insn) =
  let m =
    String.uppercase_ascii
      (String.map (fun c -> if c = '.' || c = '%' || c = '$' then '_' else c)
         i.mnemonic)
  in
  match i.op_class with
  | P.Alu -> m ^ "_RR"
  | P.Alui -> m ^ "_RI"
  | P.Mov -> m ^ "_R"
  | P.Movi -> m ^ "_I"
  | _ -> m

(** The ISD node a machine instruction selects from, where meaningful. *)
let isd_of_insn (i : P.insn) =
  match (i.op_class, i.alu) with
  | P.Alu, Some P.Add -> Some "ADD"
  | P.Alu, Some P.Sub -> Some "SUB"
  | P.Alu, Some P.And -> Some "AND"
  | P.Alu, Some P.Or -> Some "OR"
  | P.Alu, Some P.Xor -> Some "XOR"
  | P.Alu, Some P.Shl -> Some "SHL"
  | P.Alu, Some P.Shr -> Some "SRL"
  | P.Alu, Some P.Slt -> Some "SETLT"
  | P.Mul, _ -> Some "MUL"
  | P.Div, _ -> Some "SDIV"
  | P.Load, _ -> Some "LOAD"
  | P.Store, _ -> Some "STORE"
  | _ -> None

(** Immediate field width used by ALU-immediate forms. *)
let imm_bits (p : P.t) = if p.features.P.dense_imm then 12 else 16

let imm_lo p = -(1 lsl (imm_bits p - 1))
let imm_hi p = (1 lsl (imm_bits p - 1)) - 1

(** Instruction encoding layout (uniform across targets; fields are what
    encodeInstruction/decode* manipulate):
    [opcode << 24 | f1 << 18 | f2 << 12 | f3]  with f3 either a 6-bit
    register at bit 6..11-free form or a 12-bit immediate. *)
let enc_opcode_shift = 24

let enc_f1_shift = 18
let enc_f2_shift = 12
let enc_imm_mask = 0xfff
