(** Expression/statement builders for rendering reference BackendC
    implementations. Thin sugar over {!Vega_srclang.Ast}. *)

module Ast = Vega_srclang.Ast

let i n = Ast.Int n
let s str = Ast.Str str
let b v = Ast.Bool v
let id name = Ast.Id name
let sc parts = Ast.Scoped parts

(** [tgt p member] — the qualified name [<T>::member]. *)
let tgt (p : Vega_target.Profile.t) member = Ast.Scoped [ p.name; member ]

let elf member = Ast.Scoped [ "ELF"; member ]
let call f args = Ast.Call (f, args)
let meth recv m args = Ast.Method (recv, m, args)
let ( === ) a b = Ast.Binop (Ast.Eq, a, b)
let ( <>. ) a b = Ast.Binop (Ast.Ne, a, b)
let ( <. ) a b = Ast.Binop (Ast.Lt, a, b)
let ( >. ) a b = Ast.Binop (Ast.Gt, a, b)
let ( <=. ) a b = Ast.Binop (Ast.Le, a, b)
let ( >=. ) a b = Ast.Binop (Ast.Ge, a, b)
let ( &&. ) a b = Ast.Binop (Ast.Land, a, b)
let ( ||. ) a b = Ast.Binop (Ast.Lor, a, b)
let ( +. ) a b = Ast.Binop (Ast.Add, a, b)
let ( -. ) a b = Ast.Binop (Ast.Sub, a, b)
let ( *. ) a b = Ast.Binop (Ast.Mul, a, b)
let ( >>. ) a b = Ast.Binop (Ast.Shr, a, b)
let ( <<. ) a b = Ast.Binop (Ast.Shl, a, b)
let ( &. ) a b = Ast.Binop (Ast.Band, a, b)
let ( |. ) a b = Ast.Binop (Ast.Bor, a, b)
let not_ a = Ast.Unop (Ast.Not, a)
let neg a = Ast.Unop (Ast.Neg, a)

let decl ty name init = Ast.Decl (ty, name, Some init)
let decl0 ty name = Ast.Decl (ty, name, None)
let assign lhs rhs = Ast.Assign (Ast.Set, lhs, rhs)
let expr e = Ast.Expr e
let ret e = Ast.Return (Some e)
let ret0 = Ast.Return None
let if_ c t = Ast.If (c, t, [])
let ifelse c t e = Ast.If (c, t, e)
let switch scrut arms default = Ast.Switch (scrut, arms, default)
let arm labels body = { Ast.labels; body }
let break_ = Ast.Break

let unreachable msg = expr (call "llvm_unreachable" [ s msg ])

(** Build a function value. *)
let func ?cls ~ret:ret_type ~name ~params body =
  {
    Ast.ret_type;
    cls;
    name;
    params = List.map (fun (ptype, pname) -> { Ast.ptype; pname }) params;
    body;
  }
