(** SEL (Instruction Selection) interface-function specs: ISD-node to
    machine-opcode mapping, immediate legality, calling convention. *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let isel (p : P.t) = p.name ^ "DAGToDAGISel"
let lowering (p : P.t) = p.name ^ "TargetLowering"

let isd name = sc [ "ISD"; name ]

let select_opcode =
  Spec.mk ~module_:Vega_target.Module_id.SEL ~fname:"selectOpcode" ~cls:isel
    ~ret:"int"
    ~params:[ ("unsigned", "ISDOpc") ]
    (fun p ->
      let cases =
        List.filter_map
          (fun (insn : P.insn) ->
            match Spec.isd_of_insn insn with
            | Some node when insn.op_class <> P.Alui ->
                Some (arm [ isd node ] [ ret (tgt p (Spec.insn_enum_t p insn)) ])
            | _ -> None)
          p.insns
      in
      [ switch (id "ISDOpc") cases [ ret (i (-1)) ] ])

let select_imm_opcode =
  Spec.mk ~module_:SEL ~fname:"selectImmOpcode" ~cls:isel ~ret:"int"
    ~params:[ ("unsigned", "ISDOpc") ]
    (fun p ->
      let cases =
        List.filter_map
          (fun (insn : P.insn) ->
            match (insn.op_class, insn.alu) with
            | P.Alui, Some op ->
                let node =
                  match op with
                  | P.Add -> "ADD"
                  | P.And -> "AND"
                  | P.Or -> "OR"
                  | P.Shl -> "SHL"
                  | P.Shr -> "SRL"
                  | P.Slt -> "SETLT"
                  | P.Sub -> "SUB"
                  | P.Xor -> "XOR"
                in
                Some (arm [ isd node ] [ ret (tgt p (Spec.insn_enum_t p insn)) ])
            | _ -> None)
          p.insns
      in
      [ switch (id "ISDOpc") cases [ ret (i (-1)) ] ])

let select_branch_opcode =
  Spec.mk ~module_:SEL ~fname:"selectBranchOpcode" ~cls:isel ~ret:"int"
    ~params:[ ("unsigned", "CondCode") ]
    (fun p ->
      let cases =
        List.filter_map
          (fun (insn : P.insn) ->
            match insn.cond with
            | Some c ->
                let node =
                  match c with
                  | P.Ceq -> "SETEQ"
                  | P.Cne -> "SETNE"
                  | P.Clt -> "SETLT"
                  | P.Cge -> "SETGE"
                in
                Some (arm [ isd node ] [ ret (tgt p (Spec.insn_enum_t p insn)) ])
            | None -> None)
          p.insns
      in
      [ switch (id "CondCode") cases [ ret (i (-1)) ] ])

let is_legal_add_immediate =
  Spec.mk ~module_:SEL ~fname:"isLegalAddImmediate" ~cls:lowering ~ret:"bool"
    ~params:[ ("int", "Imm") ]
    (fun p ->
      [ ret (id "Imm" >=. i (Spec.imm_lo p) &&. (id "Imm" <=. i (Spec.imm_hi p))) ])

let is_legal_icmp_immediate =
  Spec.mk ~module_:SEL ~fname:"isLegalICmpImmediate" ~cls:lowering ~ret:"bool"
    ~params:[ ("int", "Imm") ]
    (fun p ->
      (* compare immediates are one bit tighter on dense-imm targets *)
      let lo = if p.features.P.dense_imm then Spec.imm_lo p / 2 else Spec.imm_lo p in
      let hi = if p.features.P.dense_imm then Spec.imm_hi p / 2 else Spec.imm_hi p in
      [ ret (id "Imm" >=. i lo &&. (id "Imm" <=. i hi)) ])

let get_arg_register =
  Spec.mk ~module_:SEL ~fname:"getArgRegister" ~cls:lowering ~ret:"unsigned"
    ~params:[ ("unsigned", "Idx") ]
    (fun p ->
      let cases =
        List.mapi (fun idx reg -> arm [ i idx ] [ ret (i reg) ]) p.regs.P.arg_regs
      in
      [ switch (id "Idx") cases [ unreachable "argument index out of range" ] ])

let get_num_arg_registers =
  Spec.mk ~module_:SEL ~fname:"getNumArgRegisters" ~cls:lowering ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i (List.length p.regs.P.arg_regs)) ])

let get_return_register =
  Spec.mk ~module_:SEL ~fname:"getReturnRegister" ~cls:lowering ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i p.regs.P.ret_reg) ])

let get_zero_register =
  Spec.mk ~module_:SEL ~fname:"getZeroRegister" ~cls:lowering ~ret:"unsigned"
    ~params:[]
    ~applies:(fun p -> p.regs.P.zero <> None)
    (fun p ->
      match p.regs.P.zero with Some z -> [ ret (i z) ] | None -> assert false)

let can_lower_mul_add =
  Spec.mk ~module_:SEL ~fname:"canLowerMulAdd" ~cls:lowering ~ret:"bool" ~params:[]
    (fun _p -> [ ret (id "EnableMulAdd" <>. i 0) ])

let select_vector_opcode =
  Spec.mk ~module_:SEL ~fname:"selectVectorOpcode" ~cls:isel ~ret:"int"
    ~params:[ ("unsigned", "ISDOpc") ]
    ~applies:(fun p -> p.features.P.has_simd)
    (fun p ->
      [
        switch (id "ISDOpc")
          [
            arm [ isd "ADD" ]
              [ ret (tgt p (Spec.insn_enum_t p (Option.get (P.find_insn p P.Vadd)))) ];
            arm [ isd "MUL" ]
              [ ret (tgt p (Spec.insn_enum_t p (Option.get (P.find_insn p P.Vmul)))) ];
          ]
          [ ret (i (-1)) ];
      ])

let get_vector_width =
  Spec.mk ~module_:SEL ~fname:"getVectorWidth" ~cls:lowering ~ret:"unsigned"
    ~params:[]
    ~applies:(fun p -> p.features.P.has_simd)
    (fun _p -> [ ret (id "VectorWidth") ])

let get_mul_add_opcode =
  Spec.mk ~module_:SEL ~fname:"getMulAddOpcode" ~cls:isel ~ret:"int" ~params:[]
    ~applies:(fun p -> p.features.P.has_madd)
    (fun p -> [ ret (tgt p (Spec.insn_enum_t p (Option.get (P.find_insn p P.Madd)))) ])

let get_stack_alignment =
  Spec.mk ~module_:SEL ~fname:"getStackAlignment" ~cls:lowering ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i (2 * (p.word_bits / 8))) ])

let all =
  [
    select_opcode;
    select_imm_opcode;
    select_branch_opcode;
    is_legal_add_immediate;
    is_legal_icmp_immediate;
    get_arg_register;
    get_num_arg_registers;
    get_return_register;
    get_zero_register;
    can_lower_mul_add;
    get_mul_add_opcode;
    select_vector_opcode;
    get_vector_width;
    get_stack_alignment;
  ]
