(** EMI (Code Emission) interface-function specs: the ELF object writer,
    asm backend (fixups, relaxation) and MC code emitter hooks. Contains
    the paper's running example, getRelocType. *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let mask bits = (1 lsl bits) - 1

(* A few training targets spell their fixup dispatch as if/else-if chains;
   pre-processing normalizes them to switch, exercising Sec. 3.1. *)
let ifchain_targets = [ "Sparc"; "MSP430"; "M68k" ]
let use_ifchain (p : P.t) = List.mem p.name ifchain_targets

(** Dispatch over fixup kinds: switch or (for designated targets) an
    equivalent if/else-if chain. [cases] are (enum member, body);
    [default] is the fallback body. *)
let fixup_dispatch (p : P.t) ~scrut ~cases ~default =
  if use_ifchain p then
    let rec chain = function
      | [] -> default
      | (name, body) :: rest -> [ ifelse (id scrut === tgt p name) body (chain rest) ]
    in
    chain cases
  else
    [
      switch (id scrut)
        (List.map (fun (name, body) -> arm [ tgt p name ] body) cases)
        default;
    ]

let obj_writer (p : P.t) = p.name ^ "ELFObjectWriter"
let asm_backend (p : P.t) = p.name ^ "AsmBackend"
let code_emitter (p : P.t) = p.name ^ "MCCodeEmitter"

let elf_none (p : P.t) = "R_" ^ String.uppercase_ascii p.td_name ^ "_NONE"

let get_reloc_type =
  Spec.mk ~module_:Vega_target.Module_id.EMI ~fname:"getRelocType" ~cls:obj_writer
    ~ret:"unsigned"
    ~params:
      [ ("MCValue", "Target"); ("MCFixup", "Fixup"); ("bool", "IsPCRel") ]
    (fun p ->
      let s1 = decl "unsigned" "Kind" (meth (id "Fixup") "getTargetKind" []) in
      let variant_part =
        if p.features.P.has_variant_kinds then
          [
            decl "MCSymbolRefExpr::VariantKind" "Modifier"
              (meth (id "Target") "getAccessVariant" []);
            switch (id "Modifier")
              (List.map
                 (fun (vk : P.variant_kind) ->
                   arm
                     [ Ast.Scoped [ p.name ^ "MCExpr"; vk.vk_name ] ]
                     [ ret (elf vk.vk_reloc) ])
                 p.variant_kinds)
              [ break_ ];
          ]
        else []
      in
      let pcrel_cases =
        List.map
          (fun (f : P.fixup) -> (f.fx_name, [ ret (elf f.fx_reloc_pcrel) ]))
          p.fixups
      in
      let abs_cases =
        List.map
          (fun (f : P.fixup) -> (f.fx_name, [ ret (elf f.fx_reloc_abs) ]))
          p.fixups
      in
      [ s1 ] @ variant_part
      @ [
          if_ (id "IsPCRel")
            (fixup_dispatch p ~scrut:"Kind" ~cases:pcrel_cases
               ~default:[ ret (elf (elf_none p)) ]);
        ]
      @ fixup_dispatch p ~scrut:"Kind" ~cases:abs_cases
          ~default:[ unreachable "invalid fixup kind!" ])

let adjust_fixup_value =
  Spec.mk ~module_:EMI ~fname:"adjustFixupValue" ~cls:asm_backend ~ret:"unsigned"
    ~params:[ ("unsigned", "Kind"); ("unsigned", "Value") ]
    (fun p ->
      let cases =
        List.map
          (fun (f : P.fixup) ->
            let e =
              if f.fx_shift = 0 then id "Value" &. i (mask f.fx_bits)
              else id "Value" >>. i f.fx_shift &. i (mask f.fx_bits)
            in
            (f.fx_name, [ ret e ]))
          p.fixups
      in
      let data_case = ret (id "Value") in
      if use_ifchain p then
        fixup_dispatch p ~scrut:"Kind" ~cases
          ~default:
            [ ifelse (id "Kind" === id "FK_Data_4") [ data_case ]
                [ unreachable "Unknown fixup kind!" ];
            ]
      else
        [
          switch (id "Kind")
            (List.map (fun (name, body) -> arm [ tgt p name ] body) cases
            @ [ arm [ id "FK_Data_4" ] [ data_case ] ])
            [ unreachable "Unknown fixup kind!" ];
        ])

let apply_fixup =
  Spec.mk ~module_:EMI ~fname:"applyFixup" ~cls:asm_backend ~ret:"unsigned"
    ~params:[ ("MCFixup", "Fixup"); ("unsigned", "Value") ]
    (fun _p ->
      [
        decl "unsigned" "Kind" (meth (id "Fixup") "getTargetKind" []);
        if_ (id "Value" === i 0) [ ret (i 0) ];
        decl "unsigned" "Adjusted" (call "adjustFixupValue" [ id "Kind"; id "Value" ]);
        decl "unsigned" "Offset" (call "getFixupKindOffset" [ id "Kind" ]);
        ret (id "Adjusted" <<. id "Offset");
      ])

let get_fixup_kind_bits =
  Spec.mk ~module_:EMI ~fname:"getFixupKindBits" ~cls:asm_backend ~ret:"unsigned"
    ~params:[ ("unsigned", "Kind") ]
    (fun p ->
      fixup_dispatch p ~scrut:"Kind"
        ~cases:(List.map (fun (f : P.fixup) -> (f.fx_name, [ ret (i f.fx_bits) ])) p.fixups)
        ~default:[ ret (i 32) ])

let get_fixup_kind_offset =
  Spec.mk ~module_:EMI ~fname:"getFixupKindOffset" ~cls:asm_backend ~ret:"unsigned"
    ~params:[ ("unsigned", "Kind") ]
    (fun p ->
      fixup_dispatch p ~scrut:"Kind"
        ~cases:
          (List.map (fun (f : P.fixup) -> (f.fx_name, [ ret (i f.fx_offset) ])) p.fixups)
        ~default:[ ret (i 0) ])

let is_pcrel_fixup =
  Spec.mk ~module_:EMI ~fname:"isPCRelFixup" ~cls:asm_backend ~ret:"bool"
    ~params:[ ("unsigned", "Kind") ]
    (fun p ->
      let pcrel = List.filter (fun (f : P.fixup) -> f.fx_pcrel) p.fixups in
      if pcrel = [] then [ ret (b false) ]
      else if use_ifchain p then
        fixup_dispatch p ~scrut:"Kind"
          ~cases:(List.map (fun (f : P.fixup) -> (f.fx_name, [ ret (b true) ])) pcrel)
          ~default:[ ret (b false) ]
      else
        [
          switch (id "Kind")
            [
              arm (List.map (fun (f : P.fixup) -> tgt p f.fx_name) pcrel)
                [ ret (b true) ];
            ]
            [ ret (b false) ];
        ])

let get_num_fixup_kinds =
  Spec.mk ~module_:EMI ~fname:"getNumFixupKinds" ~cls:asm_backend ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i (List.length p.fixups)) ])

let should_force_relocation =
  Spec.mk ~module_:EMI ~fname:"shouldForceRelocation" ~cls:asm_backend ~ret:"bool"
    ~params:[ ("MCFixup", "Fixup") ]
    (fun p ->
      let forced =
        List.filter
          (fun (f : P.fixup) ->
            match f.fx_kind with
            | P.Fk_got | P.Fk_plt | P.Fk_tls | P.Fk_call -> true
            | P.Fk_branch | P.Fk_jump | P.Fk_hi | P.Fk_lo | P.Fk_abs_word -> false)
          p.fixups
      in
      decl "unsigned" "Kind" (meth (id "Fixup") "getTargetKind" [])
      ::
      (if forced = [] then [ ret (b false) ]
       else if use_ifchain p then
         fixup_dispatch p ~scrut:"Kind"
           ~cases:(List.map (fun (f : P.fixup) -> (f.fx_name, [ ret (b true) ])) forced)
           ~default:[ ret (b false) ]
       else
         [
           switch (id "Kind")
             [
               arm (List.map (fun (f : P.fixup) -> tgt p f.fx_name) forced)
                 [ ret (b true) ];
             ]
             [ ret (b false) ];
         ]))

let get_nop_encoding =
  Spec.mk ~module_:EMI ~fname:"getNopEncoding" ~cls:code_emitter ~ret:"unsigned"
    ~params:[]
    (fun p ->
      match P.find_insn p P.Nop with
      | Some nop -> [ ret (tgt p (Spec.insn_enum_t p nop) <<. i Spec.enc_opcode_shift) ]
      | None -> [ ret (i 0) ])

let write_nop_data =
  Spec.mk ~module_:EMI ~fname:"writeNopData" ~cls:asm_backend ~ret:"bool"
    ~params:[ ("unsigned", "Count") ]
    (fun _p ->
      [
        if_ (Ast.Binop (Ast.Rem, id "Count", i 4) <>. i 0) [ ret (b false) ];
        ret (b true);
      ])

let encode_instruction =
  Spec.mk ~module_:EMI ~fname:"encodeInstruction" ~cls:code_emitter ~ret:"unsigned"
    ~params:[ ("MCInst", "MI") ]
    (fun _p ->
      (* register fields at bits 18/12/6, a (single) immediate in the low
         12 bits *)
      [
        decl "unsigned" "Opcode" (meth (id "MI") "getOpcode" []);
        decl "unsigned" "Value" (id "Opcode" <<. i Spec.enc_opcode_shift);
        decl "unsigned" "N" (meth (id "MI") "getNumOperands" []);
        decl "unsigned" "Idx" (i 0);
        decl "unsigned" "Shift" (i Spec.enc_f1_shift);
        Ast.While
          ( id "Idx" <. id "N",
            [ decl "MCOperand" "MO" (meth (id "MI") "getOperand" [ id "Idx" ]) ]
            @ [
                if_
                  (meth (id "MO") "isReg" [])
                  [
                    Ast.Assign
                      ( Ast.Or_set,
                        id "Value",
                        call "getMachineOpValue" [ id "MO" ] <<. id "Shift" );
                    Ast.Assign (Ast.Sub_set, id "Shift", i 6);
                  ];
                if_
                  (meth (id "MO") "isImm" [])
                  [
                    Ast.Assign
                      ( Ast.Or_set,
                        id "Value",
                        call "getMachineOpValue" [ id "MO" ] &. i Spec.enc_imm_mask
                      );
                  ];
                Ast.Assign (Ast.Add_set, id "Idx", i 1);
              ] );
        ret (id "Value");
      ])

let get_machine_op_value =
  Spec.mk ~module_:EMI ~fname:"getMachineOpValue" ~cls:code_emitter ~ret:"unsigned"
    ~params:[ ("MCOperand", "MO") ]
    (fun _p ->
      [
        if_ (meth (id "MO") "isReg" []) [ ret (meth (id "MO") "getReg" []) ];
        if_ (meth (id "MO") "isImm" [])
          [ ret (meth (id "MO") "getImm" [] &. i Spec.enc_imm_mask) ];
        unreachable "unknown operand type";
      ])

let branch_enums (p : P.t) =
  List.filter_map
    (fun (i : P.insn) ->
      if i.op_class = P.Branch then Some (Spec.insn_enum_t p i) else None)
    p.insns

let may_need_relaxation =
  Spec.mk ~module_:EMI ~fname:"mayNeedRelaxation" ~cls:asm_backend ~ret:"bool"
    ~params:[ ("MCInst", "Inst") ]
    ~applies:(fun p -> p.features.P.has_relaxation)
    (fun p ->
      [
        decl "unsigned" "Opcode" (meth (id "Inst") "getOpcode" []);
        switch (id "Opcode")
          [ arm (List.map (fun e -> tgt p e) (branch_enums p)) [ ret (b true) ] ]
          [ ret (b false) ];
      ])

let fixup_needs_relaxation =
  Spec.mk ~module_:EMI ~fname:"fixupNeedsRelaxation" ~cls:asm_backend ~ret:"bool"
    ~params:[ ("unsigned", "Kind"); ("int", "Value") ]
    ~applies:(fun p -> p.features.P.has_relaxation)
    (fun p ->
      let cases =
        List.filter_map
          (fun (f : P.fixup) ->
            match f.fx_kind with
            | P.Fk_branch | P.Fk_jump ->
                let k = 1 lsl (f.fx_bits + f.fx_shift - 1) in
                Some
                  ( f.fx_name,
                    [ ret (id "Value" <. i (-k) ||. (id "Value" >=. i k)) ] )
            | _ -> None)
          p.fixups
      in
      fixup_dispatch p ~scrut:"Kind" ~cases ~default:[ ret (b false) ])

let get_relaxed_opcode =
  Spec.mk ~module_:EMI ~fname:"getRelaxedOpcode" ~cls:asm_backend ~ret:"unsigned"
    ~params:[ ("unsigned", "Op") ]
    ~applies:(fun p -> p.features.P.has_relaxation)
    (fun p ->
      let jmp =
        match P.find_insn p P.Jump with
        | Some j -> tgt p (Spec.insn_enum_t p j)
        | None -> id "Op"
      in
      [
        switch (id "Op")
          [ arm (List.map (fun e -> tgt p e) (branch_enums p)) [ ret jmp ] ]
          [ ret (id "Op") ];
      ])

(* Fixup-selection hooks: which fixup kind an instruction category
   attaches. One-line, fully value-driven functions — the "easy" end of
   the paper's accuracy spectrum. *)
let fixup_getter fname kind =
  Spec.mk ~module_:EMI ~fname ~cls:asm_backend ~ret:"unsigned" ~params:[]
    ~applies:(fun p -> P.fixup_by_kind p kind <> None)
    (fun p ->
      match P.fixup_by_kind p kind with
      | Some f -> [ ret (tgt p f.P.fx_name) ]
      | None -> assert false)

let get_branch_fixup = fixup_getter "getBranchFixup" P.Fk_branch
let get_jump_fixup = fixup_getter "getJumpFixup" P.Fk_jump
let get_call_fixup = fixup_getter "getCallFixup" P.Fk_call
let get_hi_fixup = fixup_getter "getHiFixup" P.Fk_hi
let get_lo_fixup = fixup_getter "getLoFixup" P.Fk_lo
let get_abs_fixup = fixup_getter "getAbsFixup" P.Fk_abs_word

let all =
  [
    get_reloc_type;
    get_branch_fixup;
    get_jump_fixup;
    get_call_fixup;
    get_hi_fixup;
    get_lo_fixup;
    get_abs_fixup;
    adjust_fixup_value;
    apply_fixup;
    get_fixup_kind_bits;
    get_fixup_kind_offset;
    is_pcrel_fixup;
    get_num_fixup_kinds;
    should_force_relocation;
    get_nop_encoding;
    write_nop_data;
    encode_instruction;
    get_machine_op_value;
    may_need_relaxation;
    fixup_needs_relaxation;
    get_relaxed_opcode;
  ]
