(** The backend corpus: for every target, the rendered description-file
    tree plus the reference BackendC implementation of every interface
    function — the stand-in for the paper's 101 GitHub LLVM backends.

    The reference implementations double as the behavioural ground truth
    of pass@1: MiniLLVM executes them as hooks, and a generated function
    is accurate iff swapping it in leaves every regression artifact and
    simulated output unchanged. *)

type impl = {
  target : string;
  fn : Vega_srclang.Ast.func;
  helpers : Vega_srclang.Ast.func list;
      (** local (non-interface) callees, e.g. ARM's GetRelocTypeInner;
          pre-processing inlines them (Sec. 3.1) *)
}

type group = { spec : Spec.t; impls : impl list }

type t = {
  vfs : Vega_tdlang.Vfs.t;
  groups : group list;  (** one per interface function, training targets *)
}

val all_specs : Spec.t list
(** Every interface-function spec across the seven modules. *)

val specs_of_module : Vega_target.Module_id.t -> Spec.t list
val find_spec : string -> Spec.t option

val reference :
  Spec.t -> Vega_target.Profile.t ->
  (Vega_srclang.Ast.func * Vega_srclang.Ast.func list) option
(** Reference implementation as stored in the corpus (ARM's getRelocType
    is a wrapper plus a local helper); [None] when the target does not
    implement the interface. *)

val reference_inlined :
  Spec.t -> Vega_target.Profile.t -> Vega_srclang.Ast.func option
(** The fully-inlined reference — what pass@1 compares against. *)

val build : ?targets:Vega_target.Profile.t list -> unit -> t
(** Render description files for every registered target and the
    reference implementations for the given (default: training)
    targets. *)

val group_statements : group -> int
val stats : t -> int * int * int
(** (function groups, functions, statement lines). *)
