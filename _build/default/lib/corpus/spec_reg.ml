(** REG (Register Allocation) interface-function specs: frame/stack/link
    registers, reserved and callee-saved sets, frame-index offsets. *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let reg_info (p : P.t) = p.name ^ "RegisterInfo"
let frame_lowering (p : P.t) = p.name ^ "FrameLowering"

let get_frame_register =
  Spec.mk ~module_:Vega_target.Module_id.REG ~fname:"getFrameRegister"
    ~cls:reg_info ~ret:"unsigned" ~params:[]
    (fun p -> [ ret (i p.regs.P.fp) ])

let get_stack_register =
  Spec.mk ~module_:REG ~fname:"getStackRegister" ~cls:reg_info ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i p.regs.P.sp) ])

let get_ra_register =
  Spec.mk ~module_:REG ~fname:"getRARegister" ~cls:reg_info ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i p.regs.P.ra) ])

let int_set_switch ~param values ~in_set ~not_in_set =
  match values with
  | [] -> [ ret not_in_set ]
  | _ ->
      [
        switch (id param)
          [ arm (List.map i values) [ ret in_set ] ]
          [ ret not_in_set ];
      ]

let is_reserved_reg =
  Spec.mk ~module_:REG ~fname:"isReservedReg" ~cls:reg_info ~ret:"bool"
    ~params:[ ("unsigned", "RegNo") ]
    (fun p ->
      int_set_switch ~param:"RegNo" p.regs.P.reserved ~in_set:(b true)
        ~not_in_set:(b false))

let is_callee_saved_reg =
  Spec.mk ~module_:REG ~fname:"isCalleeSavedReg" ~cls:reg_info ~ret:"bool"
    ~params:[ ("unsigned", "RegNo") ]
    (fun p ->
      int_set_switch ~param:"RegNo" p.regs.P.callee_saved ~in_set:(b true)
        ~not_in_set:(b false))

let is_allocatable_reg =
  Spec.mk ~module_:REG ~fname:"isAllocatableReg" ~cls:reg_info ~ret:"bool"
    ~params:[ ("unsigned", "RegNo") ]
    (fun p ->
      if_ (id "RegNo" >=. i p.regs.P.reg_count) [ ret (b false) ]
      :: int_set_switch ~param:"RegNo" p.regs.P.reserved ~in_set:(b false)
           ~not_in_set:(b true))

let get_num_regs =
  Spec.mk ~module_:REG ~fname:"getNumRegs" ~cls:reg_info ~ret:"unsigned" ~params:[]
    (fun p -> [ ret (i p.regs.P.reg_count) ])

let get_frame_index_offset =
  Spec.mk ~module_:REG ~fname:"getFrameIndexOffset" ~cls:frame_lowering ~ret:"int"
    ~params:[ ("int", "FI") ]
    (fun p ->
      (* stack slots hold full machine words; sub-32-bit targets still
         address 4-byte slots *)
      let word = max 4 (p.word_bits / 8) in
      [ ret (neg ((id "FI" +. i 1) *. i word)) ])

let all =
  [
    get_frame_register;
    get_stack_register;
    get_ra_register;
    is_reserved_reg;
    is_callee_saved_reg;
    is_allocatable_reg;
    get_num_regs;
    get_frame_index_offset;
  ]
