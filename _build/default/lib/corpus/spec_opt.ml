(** OPT (Code Optimization) interface-function specs: immediate folding,
    compare-branch fusion, hardware loops and SIMD vectorization — the
    module the paper identifies as the most customized (over 90% manual
    effort under ForkFlow). *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let instr_info (p : P.t) = p.name ^ "InstrInfo"
let hwloops (p : P.t) = p.name ^ "HardwareLoops"
let vectorizer (p : P.t) = p.name ^ "Vectorizer"

let isd name = sc [ "ISD"; name ]

let is_profitable_to_fold_immediate =
  Spec.mk ~module_:Vega_target.Module_id.OPT ~fname:"isProfitableToFoldImmediate"
    ~cls:instr_info ~ret:"bool"
    ~params:[ ("unsigned", "ISDOpc") ]
    (fun p ->
      let nodes =
        List.filter_map
          (fun (insn : P.insn) ->
            match (insn.op_class, insn.alu) with
            | P.Alui, Some op ->
                Some
                  (match op with
                  | P.Add -> "ADD"
                  | P.And -> "AND"
                  | P.Or -> "OR"
                  | P.Shl -> "SHL"
                  | P.Shr -> "SRL"
                  | P.Slt -> "SETLT"
                  | P.Sub -> "SUB"
                  | P.Xor -> "XOR")
            | _ -> None)
          p.insns
      in
      [
        switch (id "ISDOpc")
          [ arm (List.map isd nodes) [ ret (b true) ] ]
          [ ret (b false) ];
      ])

let should_fuse_cmp_branch =
  Spec.mk ~module_:OPT ~fname:"shouldFuseCmpBranch" ~cls:instr_info ~ret:"bool"
    ~params:[]
    (fun _p -> [ ret (id "EnableFusion" <>. i 0) ])

let is_hardware_loop_profitable =
  Spec.mk ~module_:OPT ~fname:"isHardwareLoopProfitable" ~cls:hwloops ~ret:"bool"
    ~params:[ ("unsigned", "TripCount"); ("unsigned", "NumInsns") ]
    ~applies:(fun p -> p.features.P.has_hwloop)
    (fun p ->
      let max_insns = if p.name = "Hexagon" then 64 else 32 in
      [
        if_ (id "TripCount" <. i 2) [ ret (b false) ];
        if_ (id "NumInsns" >. i max_insns) [ ret (b false) ];
        ret (b true);
      ])

let get_hardware_loop_opcode =
  Spec.mk ~module_:OPT ~fname:"getHardwareLoopOpcode" ~cls:hwloops ~ret:"unsigned"
    ~params:[]
    ~applies:(fun p -> p.features.P.has_hwloop)
    (fun p -> [ ret (tgt p (Spec.insn_enum_t p (Option.get (P.find_insn p P.LoopSetup)))) ])

let get_hardware_loop_end_opcode =
  Spec.mk ~module_:OPT ~fname:"getHardwareLoopEndOpcode" ~cls:hwloops
    ~ret:"unsigned" ~params:[]
    ~applies:(fun p -> p.features.P.has_hwloop)
    (fun p -> [ ret (tgt p (Spec.insn_enum_t p (Option.get (P.find_insn p P.LoopEnd)))) ])

let get_max_hardware_loop_insns =
  Spec.mk ~module_:OPT ~fname:"getMaxHardwareLoopInsns" ~cls:hwloops
    ~ret:"unsigned" ~params:[]
    ~applies:(fun p -> p.features.P.has_hwloop)
    (fun _p -> [ ret (id "HwLoopInsns") ])

let should_vectorize_op =
  Spec.mk ~module_:OPT ~fname:"shouldVectorizeOp" ~cls:vectorizer ~ret:"bool"
    ~params:[ ("unsigned", "ISDOpc") ]
    ~applies:(fun p -> p.features.P.has_simd)
    (fun _p ->
      [
        switch (id "ISDOpc")
          [ arm [ isd "ADD"; isd "MUL" ] [ ret (b true) ] ]
          [ ret (b false) ];
      ])

let get_vector_factor =
  Spec.mk ~module_:OPT ~fname:"getVectorFactor" ~cls:vectorizer ~ret:"unsigned"
    ~params:[]
    ~applies:(fun p -> p.features.P.has_simd)
    (fun _p -> [ ret (id "VectorWidth") ])

let is_cheap_immediate =
  Spec.mk ~module_:OPT ~fname:"isCheapImmediate" ~cls:instr_info ~ret:"bool"
    ~params:[ ("int", "Imm") ]
    (fun p ->
      [ ret (id "Imm" >=. i (Spec.imm_lo p) &&. (id "Imm" <=. i (Spec.imm_hi p))) ])

let enable_peephole =
  Spec.mk ~module_:OPT ~fname:"enablePeephole" ~cls:instr_info ~ret:"bool"
    ~params:[]
    (fun _p -> [ ret (id "IssueWidth" <=. i 2) ])

let all =
  [
    is_profitable_to_fold_immediate;
    should_fuse_cmp_branch;
    is_hardware_loop_profitable;
    get_hardware_loop_opcode;
    get_hardware_loop_end_opcode;
    get_max_hardware_loop_insns;
    should_vectorize_op;
    get_vector_factor;
    is_cheap_immediate;
    enable_peephole;
  ]
