(** The backend corpus: for every target, the rendered description-file
    tree plus the reference BackendC implementation of every interface
    function — the stand-in for the paper's 101 GitHub LLVM backends. *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
module Vfs = Vega_tdlang.Vfs

type impl = {
  target : string;
  fn : Ast.func;
  helpers : Ast.func list;
      (** local (non-interface) callees, e.g. ARM's GetRelocTypeInner;
          pre-processing inlines them (Sec. 3.1) *)
}

type group = { spec : Spec.t; impls : impl list }

type t = {
  vfs : Vfs.t;
  groups : group list;  (** one per interface function, training targets only *)
}

let all_specs : Spec.t list =
  Spec_sel.all @ Spec_reg.all @ Spec_opt.all @ Spec_sch.all @ Spec_emi.all
  @ Spec_ass.all @ Spec_dis.all

let specs_of_module m =
  List.filter (fun (s : Spec.t) -> s.module_ = m) all_specs

let find_spec fname = List.find_opt (fun (s : Spec.t) -> s.fname = fname) all_specs

(* ARM (as in the paper's Fig. 2) hides the body of getRelocType behind a
   local helper; pre-processing must inline it. *)
let wrapper_targets = [ "ARM" ]

let split_wrapper (p : P.t) (fn : Ast.func) =
  if fn.Ast.name = "getRelocType" && List.mem p.name wrapper_targets then begin
    let helper_name = "GetRelocTypeInner" in
    let helper =
      { fn with Ast.cls = None; name = helper_name }
    in
    let args = List.map (fun (prm : Ast.param) -> Ast.Id prm.pname) fn.params in
    let wrapper =
      { fn with Ast.body = [ Ast.Return (Some (Ast.Call (helper_name, args))) ] }
    in
    (wrapper, [ helper ])
  end
  else (fn, [])

(** Reference implementation (post-split) for one spec and target. *)
let reference (spec : Spec.t) (p : P.t) =
  Option.map (split_wrapper p) (Spec.render spec p)

(** Fully-inlined reference (what pass@1 compares against behaviourally). *)
let reference_inlined (spec : Spec.t) (p : P.t) = Spec.render spec p

let build ?(targets = Vega_target.Registry.training) () =
  let vfs = Vfs.create () in
  Descfiles.render_llvm_common vfs;
  List.iter (Descfiles.render_target vfs) Vega_target.Registry.all;
  let groups =
    List.map
      (fun spec ->
        let impls =
          List.filter_map
            (fun p ->
              match reference spec p with
              | Some (fn, helpers) -> Some { target = p.P.name; fn; helpers }
              | None -> None)
            targets
        in
        { spec; impls })
      all_specs
  in
  { vfs; groups }

(** Total statement-line count across a group's implementations. *)
let group_statements g =
  List.fold_left
    (fun acc impl ->
      acc + List.length (Vega_srclang.Lines.of_func impl.fn))
    0 g.impls

let stats t =
  let groups = List.length t.groups in
  let functions = List.fold_left (fun a g -> a + List.length g.impls) 0 t.groups in
  let statements = List.fold_left (fun a g -> a + group_statements g) 0 t.groups in
  (groups, functions, statements)
