lib/corpus/descfiles.ml: Buffer List Printf Spec String Vega_target Vega_tdlang
