lib/corpus/corpus.mli: Spec Vega_srclang Vega_target Vega_tdlang
