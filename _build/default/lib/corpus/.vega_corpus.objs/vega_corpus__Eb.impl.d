lib/corpus/eb.ml: List Vega_srclang Vega_target
