lib/corpus/spec_dis.ml: Eb List Spec Vega_srclang Vega_target
