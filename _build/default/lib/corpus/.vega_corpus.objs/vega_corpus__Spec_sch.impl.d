lib/corpus/spec_sch.ml: Eb Hashtbl List Option Spec Vega_srclang Vega_target
