lib/corpus/spec_ass.ml: Eb Hashtbl List Spec String Vega_srclang Vega_target
