lib/corpus/spec_sel.ml: Eb List Option Spec Vega_srclang Vega_target
