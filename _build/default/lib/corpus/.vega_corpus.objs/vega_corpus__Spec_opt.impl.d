lib/corpus/spec_opt.ml: Eb List Option Spec Vega_srclang Vega_target
