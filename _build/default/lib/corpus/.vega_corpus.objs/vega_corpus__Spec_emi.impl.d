lib/corpus/spec_emi.ml: Eb List Spec String Vega_srclang Vega_target
