lib/corpus/spec.ml: List String Vega_srclang Vega_target
