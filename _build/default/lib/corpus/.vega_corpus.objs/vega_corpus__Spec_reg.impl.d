lib/corpus/spec_reg.ml: Eb List Spec Vega_srclang Vega_target
