lib/corpus/corpus.ml: Descfiles List Option Spec Spec_ass Spec_dis Spec_emi Spec_opt Spec_reg Spec_sch Spec_sel Vega_srclang Vega_target Vega_tdlang
