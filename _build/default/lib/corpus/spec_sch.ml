(** SCH (Instruction Scheduling) interface-function specs: latencies,
    issue width, macro-fusion, post-RA scheduling. *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let subtarget (p : P.t) = p.name ^ "Subtarget"
let sched_model (p : P.t) = p.name ^ "SchedModel"

(** Group instructions by latency and emit one case arm per group. *)
let latency_cases (p : P.t) =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (insn : P.insn) ->
      if insn.latency <> 1 then begin
        let l = Option.value ~default:[] (Hashtbl.find_opt groups insn.latency) in
        Hashtbl.replace groups insn.latency (l @ [ Spec.insn_enum_t p insn ])
      end)
    p.insns;
  Hashtbl.fold (fun lat enums acc -> (lat, enums) :: acc) groups []
  |> List.sort compare

let get_instr_latency =
  Spec.mk ~module_:Vega_target.Module_id.SCH ~fname:"getInstrLatency"
    ~cls:sched_model ~ret:"unsigned"
    ~params:[ ("unsigned", "Opcode") ]
    (fun p ->
      [
        switch (id "Opcode")
          (List.map
             (fun (lat, enums) ->
               arm (List.map (fun e -> tgt p e) enums) [ ret (i lat) ])
             (latency_cases p))
          [ ret (i 1) ];
      ])

let get_issue_width =
  Spec.mk ~module_:SCH ~fname:"getIssueWidth" ~cls:sched_model ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i p.sched.P.issue_width) ])

let enable_post_ra_scheduler =
  Spec.mk ~module_:SCH ~fname:"enablePostRAScheduler" ~cls:subtarget ~ret:"bool"
    ~params:[]
    (fun _p -> [ ret (id "EnablePostRA" <>. i 0) ])

let should_schedule_adjacent =
  Spec.mk ~module_:SCH ~fname:"shouldScheduleAdjacent" ~cls:sched_model
    ~ret:"bool"
    ~params:[ ("unsigned", "FirstOpc"); ("unsigned", "SecondOpc") ]
    (fun p ->
      if not p.sched.P.fuse_cmp_branch then [ ret (b false) ]
      else
        let branches =
          List.filter_map
            (fun (insn : P.insn) ->
              if insn.op_class = P.Branch then Some (tgt p (Spec.insn_enum_t p insn))
              else None)
            p.insns
        in
        let slt_rr = Spec.insn_enum_t p (Option.get (P.alu_insn p P.Slt)) in
        let slt_ri = Spec.insn_enum_t p (Option.get (P.alui_insn p P.Slt)) in
        [
          if_
            (id "FirstOpc" === tgt p slt_rr ||. (id "FirstOpc" === tgt p slt_ri))
            [
              switch (id "SecondOpc")
                [ arm branches [ ret (b true) ] ]
                [ ret (b false) ];
            ];
          ret (b false);
        ])

let get_num_micro_ops =
  Spec.mk ~module_:SCH ~fname:"getNumMicroOps" ~cls:sched_model ~ret:"unsigned"
    ~params:[ ("unsigned", "Opcode") ]
    (fun p ->
      let multi =
        List.filter_map
          (fun (insn : P.insn) ->
            if insn.micro_ops <> 1 then Some (insn.micro_ops, Spec.insn_enum_t p insn)
            else None)
          p.insns
      in
      [
        switch (id "Opcode")
          (List.map (fun (n, e) -> arm [ tgt p e ] [ ret (i n) ]) multi)
          [ ret (i 1) ];
      ])

let is_high_latency_def =
  Spec.mk ~module_:SCH ~fname:"isHighLatencyDef" ~cls:sched_model ~ret:"bool"
    ~params:[ ("unsigned", "Opcode") ]
    (fun p ->
      let high =
        List.filter_map
          (fun (insn : P.insn) ->
            if insn.latency >= 4 then Some (tgt p (Spec.insn_enum_t p insn)) else None)
          p.insns
      in
      match high with
      | [] -> [ ret (b false) ]
      | _ ->
          [
            switch (id "Opcode") [ arm high [ ret (b true) ] ] [ ret (b false) ];
          ])

let get_load_latency =
  Spec.mk ~module_:SCH ~fname:"getLoadLatency" ~cls:subtarget ~ret:"unsigned"
    ~params:[]
    (fun p -> [ ret (i p.sched.P.load_latency) ])

let get_mispredict_penalty =
  Spec.mk ~module_:SCH ~fname:"getMispredictPenalty" ~cls:subtarget
    ~ret:"unsigned" ~params:[]
    (fun p -> [ ret (i ((2 * p.sched.P.branch_latency) + p.sched.P.issue_width)) ])

let all =
  [
    get_instr_latency;
    get_issue_width;
    enable_post_ra_scheduler;
    should_schedule_adjacent;
    get_num_micro_ops;
    is_high_latency_def;
    get_load_latency;
    get_mispredict_penalty;
  ]
