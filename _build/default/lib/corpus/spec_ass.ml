(** ASS (Assembler Parsing) interface-function specs: register/immediate/
    mnemonic parsing and operand validation for the target AsmParser. *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let asm_parser (p : P.t) = p.name ^ "AsmParser"

let match_register_name =
  Spec.mk ~module_:Vega_target.Module_id.ASS ~fname:"matchRegisterName"
    ~cls:asm_parser ~ret:"int"
    ~params:[ ("StringRef", "Name") ]
    (fun p ->
      let prefix = p.regs.P.reg_prefix in
      [
        if_ (not_ (meth (id "Name") "startswith" [ s prefix ])) [ ret (i (-1)) ];
        decl "StringRef" "Digits"
          (meth (id "Name") "substr" [ i (String.length prefix) ]);
        if_ (not_ (meth (id "Digits") "isDigits" [])) [ ret (i (-1)) ];
        decl "int" "RegNo" (meth (id "Digits") "getAsInteger" []);
        if_ (id "RegNo" >=. i p.regs.P.reg_count) [ ret (i (-1)) ];
        ret (id "RegNo");
      ])

let parse_immediate =
  Spec.mk ~module_:ASS ~fname:"parseImmediate" ~cls:asm_parser ~ret:"int"
    ~params:[ ("StringRef", "Tok") ]
    (fun p ->
      let strip_marker =
        if p.imm_marker = "" then []
        else
          [
            if_ (meth (id "Tok") "startswith" [ s p.imm_marker ])
              [ assign (id "Tok") (meth (id "Tok") "substr" [ i (String.length p.imm_marker) ]) ];
          ]
      in
      strip_marker @ [ ret (meth (id "Tok") "getAsInteger" []) ])

let is_register_name =
  Spec.mk ~module_:ASS ~fname:"isRegisterName" ~cls:asm_parser ~ret:"bool"
    ~params:[ ("StringRef", "Name") ]
    (fun p ->
      [
        if_ (not_ (meth (id "Name") "startswith" [ s p.regs.P.reg_prefix ]))
          [ ret (b false) ];
        ret
          (meth
             (meth (id "Name") "substr" [ i (String.length p.regs.P.reg_prefix) ])
             "isDigits" []);
      ])

let match_mnemonic =
  Spec.mk ~module_:ASS ~fname:"matchMnemonic" ~cls:asm_parser ~ret:"int"
    ~params:[ ("StringRef", "Mnemonic"); ("bool", "HasImm") ]
    (fun p ->
      (* several targets reuse one mnemonic for the register and the
         immediate form (ARM's mov/lsl); disambiguate on operand shape,
         like LLVM's AsmMatcher *)
      let imm_form (insn : P.insn) =
        match insn.op_class with
        | P.Alui | P.Movi | P.Load | P.Store | P.LoopSetup -> true
        | _ -> false
      in
      let groups = Hashtbl.create 32 in
      let order = ref [] in
      List.iter
        (fun (insn : P.insn) ->
          (match Hashtbl.find_opt groups insn.mnemonic with
          | Some l -> Hashtbl.replace groups insn.mnemonic (l @ [ insn ])
          | None ->
              Hashtbl.add groups insn.mnemonic [ insn ];
              order := insn.mnemonic :: !order))
        p.insns;
      List.concat_map
        (fun m ->
          let insns = Hashtbl.find groups m in
          let body =
            match insns with
            | [ one ] -> [ ret (tgt p (Spec.insn_enum_t p one)) ]
            | several -> (
                let imm = List.find_opt imm_form several in
                let rr = List.find_opt (fun x -> not (imm_form x)) several in
                match (imm, rr) with
                | Some im, Some r ->
                    [
                      if_ (id "HasImm") [ ret (tgt p (Spec.insn_enum_t p im)) ];
                      ret (tgt p (Spec.insn_enum_t p r));
                    ]
                | Some im, None -> [ ret (tgt p (Spec.insn_enum_t p im)) ]
                | None, Some r -> [ ret (tgt p (Spec.insn_enum_t p r)) ]
                | None, None -> [ ret (i (-1)) ])
          in
          [ if_ (meth (id "Mnemonic") "equals" [ s m ]) body ])
        (List.rev !order)
      @ [ ret (i (-1)) ])

let is_valid_immediate =
  Spec.mk ~module_:ASS ~fname:"isValidImmediate" ~cls:asm_parser ~ret:"bool"
    ~params:[ ("int", "Value") ]
    (fun p ->
      [ ret (id "Value" >=. i (Spec.imm_lo p) &&. (id "Value" <=. i (Spec.imm_hi p))) ])

let validate_instruction =
  Spec.mk ~module_:ASS ~fname:"validateInstruction" ~cls:asm_parser ~ret:"bool"
    ~params:[ ("MCInst", "Inst") ]
    (fun p ->
      let imm_forms =
        List.filter_map
          (fun (insn : P.insn) ->
            match insn.op_class with
            | P.Alui | P.Movi -> Some (tgt p (Spec.insn_enum_t p insn))
            | _ -> None)
          p.insns
      in
      [
        decl "unsigned" "N" (meth (id "Inst") "getNumOperands" []);
        if_ (id "N" >. i 3) [ ret (b false) ];
        decl "unsigned" "Opcode" (meth (id "Inst") "getOpcode" []);
        switch (id "Opcode")
          [
            arm imm_forms
              [
                decl "int" "Imm"
                  (meth (meth (id "Inst") "getOperand" [ id "N" -. i 1 ]) "getImm" []);
                ret (call "isValidImmediate" [ id "Imm" ]);
              ];
          ]
          [ ret (b true) ];
      ])

let parse_operand_kind =
  Spec.mk ~module_:ASS ~fname:"parseOperandKind" ~cls:asm_parser ~ret:"unsigned"
    ~params:[ ("StringRef", "Tok") ]
    (fun p ->
      let marker_check =
        if p.imm_marker = "" then []
        else
          [ if_ (meth (id "Tok") "startswith" [ s p.imm_marker ]) [ ret (i 1) ] ]
      in
      [
        if_
          (meth (id "Tok") "startswith" [ s p.regs.P.reg_prefix ]
          &&. meth
                (meth (id "Tok") "substr" [ i (String.length p.regs.P.reg_prefix) ])
                "isDigits" [])
          [ ret (i 0) ];
      ]
      @ marker_check
      @ [
          if_ (meth (id "Tok") "isDigits" []) [ ret (i 1) ];
          if_ (meth (id "Tok") "startswith" [ s "-" ]) [ ret (i 1) ];
          ret (i 2);
        ])

let parse_directive =
  Spec.mk ~module_:ASS ~fname:"parseDirective" ~cls:asm_parser ~ret:"bool"
    ~params:[ ("StringRef", "Name") ]
    (fun p ->
      let word_directive = if p.word_bits >= 32 then ".word" else ".hword" in
      [
        if_ (meth (id "Name") "equals" [ s word_directive ]) [ ret (b true) ];
        if_ (meth (id "Name") "equals" [ s ".align" ]) [ ret (b true) ];
        if_ (meth (id "Name") "equals" [ s ".globl" ]) [ ret (b true) ];
        ret (b false);
      ])

let all =
  [
    match_register_name;
    parse_immediate;
    is_register_name;
    match_mnemonic;
    is_valid_immediate;
    validate_instruction;
    parse_operand_kind;
    parse_directive;
  ]
