(** DIS (Disassembler) interface-function specs. Absent entirely for
    targets without a disassembler (XCORE on LLVM 3.0, Sec. 4.1.4). *)

module P = Vega_target.Profile
module Ast = Vega_srclang.Ast
open Eb

let disassembler (p : P.t) = p.name ^ "Disassembler"
let has_dis (p : P.t) = p.features.P.has_disassembler

let read_instruction32 =
  Spec.mk ~module_:Vega_target.Module_id.DIS ~fname:"readInstruction32"
    ~cls:disassembler ~ret:"unsigned"
    ~params:
      [ ("unsigned", "B0"); ("unsigned", "B1"); ("unsigned", "B2"); ("unsigned", "B3") ]
    ~applies:has_dis
    (fun p ->
      match p.endian with
      | P.Little ->
          [
            ret
              (id "B0" |. (id "B1" <<. i 8) |. (id "B2" <<. i 16)
              |. (id "B3" <<. i 24));
          ]
      | P.Big ->
          [
            ret
              (id "B3" |. (id "B2" <<. i 8) |. (id "B1" <<. i 16)
              |. (id "B0" <<. i 24));
          ])

let get_instruction =
  Spec.mk ~module_:DIS ~fname:"getInstruction" ~cls:disassembler ~ret:"unsigned"
    ~params:[ ("unsigned", "Insn") ]
    ~applies:has_dis
    (fun p ->
      [
        decl "unsigned" "Opcode" (id "Insn" >>. i Spec.enc_opcode_shift &. i 255);
        switch (id "Opcode")
          [
            arm
              (List.map (fun (insn : P.insn) -> tgt p (Spec.insn_enum_t p insn)) p.insns)
              [ ret (sc [ "MCDisassembler"; "Success" ]) ];
          ]
          [ ret (sc [ "MCDisassembler"; "Fail" ]) ];
      ])

let decode_gpr_register_class =
  Spec.mk ~module_:DIS ~fname:"decodeGPRRegisterClass" ~cls:disassembler
    ~ret:"unsigned"
    ~params:[ ("unsigned", "RegNo") ]
    ~applies:has_dis
    (fun p ->
      [
        if_ (id "RegNo" >=. i p.regs.P.reg_count)
          [ ret (sc [ "MCDisassembler"; "Fail" ]) ];
        ret (sc [ "MCDisassembler"; "Success" ]);
      ])

let decode_simm_operand =
  Spec.mk ~module_:DIS ~fname:"decodeSImmOperand" ~cls:disassembler ~ret:"int"
    ~params:[ ("unsigned", "Insn") ]
    ~applies:has_dis
    (fun _p ->
      [
        decl "int" "Imm" (id "Insn" &. i Spec.enc_imm_mask);
        if_
          (id "Imm" &. i 2048 <>. i 0)
          [ assign (id "Imm") (id "Imm" -. i 4096) ];
        ret (id "Imm");
      ])

let decode_register_operand =
  Spec.mk ~module_:DIS ~fname:"decodeRegisterOperand" ~cls:disassembler
    ~ret:"unsigned"
    ~params:[ ("unsigned", "Insn"); ("unsigned", "Field") ]
    ~applies:has_dis
    (fun _p ->
      [
        if_ (id "Field" === i 0)
          [ ret (id "Insn" >>. i Spec.enc_f1_shift &. i 63) ];
        if_ (id "Field" === i 1)
          [ ret (id "Insn" >>. i Spec.enc_f2_shift &. i 63) ];
        ret (id "Insn" >>. i 6 &. i 63);
      ])

let all =
  [
    read_instruction32;
    get_instruction;
    decode_gpr_register_class;
    decode_simm_operand;
    decode_register_operand;
  ]
