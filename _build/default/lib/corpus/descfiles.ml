(** Renderer of the virtual file tree: LLVM-provided code under LLVMDIRs
    and per-target description files under TGTDIRs.

    Feature selection (Algorithm 1) and target-specific generation read
    these files back through {!Vega_tdlang}; nothing in the pipeline sees
    the profiles directly, which keeps the "from description files only"
    property of the paper honest. *)

module P = Vega_target.Profile
module Vfs = Vega_tdlang.Vfs

let spf = Printf.sprintf

(* ---------------------------------------------------------------- *)
(* LLVM-provided code (shared once per tree)                         *)

let mcfixup_h =
  {|namespace llvmmc {
enum MCFixupKind {
  FK_NONE = 0,
  FK_Data_1 = 1,
  FK_Data_2 = 2,
  FK_Data_4 = 3,
  FK_Data_8 = 4,
  FirstTargetFixupKind = 64,
  MaxTargetFixupKind = 128
};
}
class MCFixup {
  unsigned getTargetKind();
  unsigned getOffset();
};
|}

let mcexpr_h =
  {|class MCSymbolRefExpr {
  enum VariantKind {
    VK_None = 0
  };
};
|}

let mcvalue_h = {|class MCValue {
  unsigned getAccessVariant();
};
|}

let mcinst_h =
  {|class MCOperand {
  bool isReg();
  bool isImm();
  unsigned getReg();
  int getImm();
};
class MCInst {
  unsigned getOpcode();
  unsigned getNumOperands();
  MCOperand getOperand(unsigned Idx);
};
|}

let mcdisassembler_h =
  {|class MCDisassembler {
  enum DecodeStatus {
    Fail = 0,
    SoftFail = 2,
    Success = 3
  };
};
|}

let mcelfobjectwriter_h =
  {|class MCELFObjectTargetWriter {
  unsigned getRelocType(MCValue Target, MCFixup Fixup, bool IsPCRel);
};
class MCAsmBackend {
  unsigned applyFixup(MCFixup Fixup, unsigned Value);
  unsigned getNumFixupKinds();
  bool mayNeedRelaxation(MCInst Inst);
};
class MCCodeEmitter {
  unsigned encodeInstruction(MCInst MI);
};
|}

let stringref_h =
  {|class StringRef {
  bool startswith(StringRef Prefix);
  bool endswith(StringRef Suffix);
  StringRef substr(unsigned Start);
  unsigned size();
  bool empty();
  bool equals(StringRef Other);
  int getAsInteger();
  bool isDigits();
};
|}

let isdopcodes_h =
  {|namespace ISD {
enum NodeType {
  ADD = 1,
  SUB = 2,
  MUL = 3,
  SDIV = 4,
  AND = 5,
  OR = 6,
  XOR = 7,
  SHL = 8,
  SRL = 9,
  SETLT = 10,
  SETEQ = 11,
  SETNE = 12,
  SETGE = 13,
  LOAD = 14,
  STORE = 15,
  BR = 16,
  BRCOND = 17,
  CALL = 18,
  RET = 19,
  Constant = 20
};
}
|}

let codegen_interfaces_h =
  {|class TargetLowering {
  bool isLegalAddImmediate(int Imm);
  bool isLegalICmpImmediate(int Imm);
};
class TargetInstrInfo {
  bool isProfitableToFoldImmediate(unsigned ISDOpc);
};
class TargetRegisterInfo {
  unsigned getFrameRegister();
  unsigned getRARegister();
};
class TargetSubtargetInfo {
  bool enablePostRAScheduler();
};
class TargetSchedModel {
  unsigned getInstrLatency(unsigned Opcode);
  unsigned getIssueWidth();
};
class TargetFrameLowering {
  int getFrameIndexOffset(int FI);
};
|}

let target_td =
  {|class Target {
  string Name = "";
  string Endianness = "little";
  int IssueWidth = 1;
  int EnableMulAdd = 0;
  int EnablePostRA = 0;
  int EnableFusion = 0;
  int VectorWidth = 1;
  int HwLoopInsns = 0;
  int StackAlignment = 8;
  int MispredictPenalty = 3;
  int WordBits = 32;
  string ImmMarker = "";
  string CommentChar = "#";
}
class Instruction {
  string Mnemonic = "";
  string EnumName = "";
  string OperandType = "";
  int Opcode = 0;
  int Latency = 1;
  int MicroOps = 1;
  int ImmBits = 16;
}
class RegisterClass {
  int NumRegs = 0;
  string Prefix = "";
  int StackReg = 0;
  int LinkReg = 0;
  int FrameReg = 0;
  int ZeroReg = -1;
  int RetReg = 0;
  list<int> ArgRegs = [];
  list<int> CalleeSaved = [];
  list<int> Reserved = [];
}
class SchedMachineModel {
  int LoadLatency = 2;
  int MulLatency = 3;
  int DivLatency = 12;
  int BranchLatency = 1;
}
|}

let elf_h = {|namespace ELF {
enum BaseRelocType {
  R_NONE = 0
};
}
|}

let render_llvm_common vfs =
  Vfs.add vfs ~path:"llvm/MC/MCFixup.h" mcfixup_h;
  Vfs.add vfs ~path:"llvm/MC/MCExpr.h" mcexpr_h;
  Vfs.add vfs ~path:"llvm/MC/MCValue.h" mcvalue_h;
  Vfs.add vfs ~path:"llvm/MC/MCInst.h" mcinst_h;
  Vfs.add vfs ~path:"llvm/MC/MCDisassembler.h" mcdisassembler_h;
  Vfs.add vfs ~path:"llvm/MC/MCELFObjectWriter.h" mcelfobjectwriter_h;
  Vfs.add vfs ~path:"llvm/MC/StringRef.h" stringref_h;
  Vfs.add vfs ~path:"llvm/CodeGen/ISDOpcodes.h" isdopcodes_h;
  Vfs.add vfs ~path:"llvm/CodeGen/TargetInterfaces.h" codegen_interfaces_h;
  Vfs.add vfs ~path:"llvm/Target/Target.td" target_td;
  Vfs.add vfs ~path:"llvm/BinaryFormat/ELF.h" elf_h

(* ---------------------------------------------------------------- *)
(* Per-target description files                                      *)

let target_record (p : P.t) =
  let endian = match p.endian with P.Little -> "little" | P.Big -> "big" in
  let b v = if v then 1 else 0 in
  let hwloop_insns =
    if not p.features.P.has_hwloop then 0
    else if p.name = "Hexagon" then 64
    else 32
  in
  String.concat "\n"
    [
      spf "def %s : Target {" p.name;
      spf "  let Name = %S;" p.td_name;
      spf "  let Endianness = %S;" endian;
      spf "  let IssueWidth = %d;" p.sched.P.issue_width;
      spf "  let EnableMulAdd = %d;" (b p.features.P.has_madd);
      spf "  let EnablePostRA = %d;" (b p.sched.P.post_ra);
      spf "  let EnableFusion = %d;" (b p.sched.P.fuse_cmp_branch);
      spf "  let VectorWidth = %d;" (if p.features.P.has_simd then 4 else 1);
      spf "  let HwLoopInsns = %d;" hwloop_insns;
      spf "  let StackAlignment = %d;" (2 * (p.word_bits / 8));
      spf "  let MispredictPenalty = %d;"
        ((2 * p.sched.P.branch_latency) + p.sched.P.issue_width);
      spf "  let WordBits = %d;" p.word_bits;
      spf "  let ImmMarker = %S;" p.imm_marker;
      spf "  let CommentChar = %S;" p.comment_char;
      "}";
      "";
    ]

let instr_info_td (p : P.t) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (insn : P.insn) ->
      let operand_type =
        match insn.op_class with
        | P.Branch | P.Jump | P.CallOp | P.LoopSetup -> "OPERAND_PCREL"
        | P.Alui | P.Movi -> "OPERAND_IMM"
        | _ -> ""
      in
      Buffer.add_string buf (spf "def %s : Instruction {\n" (Spec.insn_enum_t p insn));
      Buffer.add_string buf (spf "  let Mnemonic = %S;\n" insn.mnemonic);
      Buffer.add_string buf (spf "  let EnumName = %S;\n" (Spec.insn_enum insn));
      if operand_type <> "" then
        Buffer.add_string buf (spf "  let OperandType = %S;\n" operand_type);
      Buffer.add_string buf (spf "  let Opcode = %d;\n" insn.opcode);
      Buffer.add_string buf (spf "  let Latency = %d;\n" insn.latency);
      Buffer.add_string buf (spf "  let MicroOps = %d;\n" insn.micro_ops);
      Buffer.add_string buf (spf "  let ImmBits = %d;\n" (Spec.imm_bits p));
      Buffer.add_string buf "}\n")
    p.insns;
  Buffer.contents buf

let register_info_td (p : P.t) =
  let ints l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]" in
  String.concat "\n"
    [
      "def GPR : RegisterClass {";
      spf "  let NumRegs = %d;" p.regs.P.reg_count;
      spf "  let Prefix = %S;" p.regs.P.reg_prefix;
      spf "  let StackReg = %d;" p.regs.P.sp;
      spf "  let LinkReg = %d;" p.regs.P.ra;
      spf "  let FrameReg = %d;" p.regs.P.fp;
      (* targets without a hardwired zero leave the field out entirely,
         giving feature selection a real presence signal *)
      (match p.regs.P.zero with
      | Some z -> spf "  let ZeroReg = %d;" z
      | None -> "  // no zero register");
      spf "  let RetReg = %d;" p.regs.P.ret_reg;
      spf "  let ArgRegs = %s;" (ints p.regs.P.arg_regs);
      spf "  let CalleeSaved = %s;" (ints p.regs.P.callee_saved);
      spf "  let Reserved = %s;" (ints p.regs.P.reserved);
      "}";
      "";
    ]

let schedule_td (p : P.t) =
  String.concat "\n"
    [
      spf "def %sModel : SchedMachineModel {" p.name;
      spf "  let LoadLatency = %d;" p.sched.P.load_latency;
      spf "  let MulLatency = %d;" p.sched.P.mul_latency;
      spf "  let DivLatency = %d;" p.sched.P.div_latency;
      spf "  let BranchLatency = %d;" p.sched.P.branch_latency;
      "}";
      "";
    ]

let fixup_kinds_h (p : P.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (spf "namespace %s {\n" p.name);
  Buffer.add_string buf "enum Fixups {\n";
  List.iteri
    (fun i (f : P.fixup) ->
      if i = 0 then
        Buffer.add_string buf (spf "  %s = FirstTargetFixupKind,\n" f.fx_name)
      else Buffer.add_string buf (spf "  %s,\n" f.fx_name))
    p.fixups;
  Buffer.add_string buf "  LastTargetFixupKind\n";
  Buffer.add_string buf "};\n}\n";
  Buffer.contents buf

let gen_instr_info_h (p : P.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (spf "namespace %s {\n" p.name);
  Buffer.add_string buf "enum Opcodes {\n";
  let n = List.length p.insns in
  List.iteri
    (fun i (insn : P.insn) ->
      Buffer.add_string buf
        (spf "  %s = %d%s\n" (Spec.insn_enum_t p insn) insn.opcode
           (if i = n - 1 then "" else ",")))
    p.insns;
  Buffer.add_string buf "};\n}\n";
  Buffer.contents buf

let mcexpr_target_h (p : P.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (spf "class %sMCExpr {\n" p.name);
  Buffer.add_string buf "  enum VariantKind {\n";
  let n = List.length p.variant_kinds in
  List.iteri
    (fun i (vk : P.variant_kind) ->
      Buffer.add_string buf
        (spf "    %s = %d%s\n" vk.vk_name (i + 1) (if i = n - 1 then "" else ",")))
    p.variant_kinds;
  Buffer.add_string buf "  };\n};\n";
  Buffer.contents buf

let elf_relocs_def (p : P.t) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf (spf "ELF_RELOC(%s, %d)\n" name value))
    (P.all_relocs p);
  Buffer.contents buf

let render_target vfs (p : P.t) =
  let dir = "lib/Target/" ^ p.name in
  Vfs.add vfs ~path:(spf "%s/%s.td" dir p.name) (target_record p);
  Vfs.add vfs ~path:(spf "%s/%sInstrInfo.td" dir p.name) (instr_info_td p);
  Vfs.add vfs ~path:(spf "%s/%sRegisterInfo.td" dir p.name) (register_info_td p);
  Vfs.add vfs ~path:(spf "%s/%sSchedule.td" dir p.name) (schedule_td p);
  Vfs.add vfs ~path:(spf "%s/%sFixupKinds.h" dir p.name) (fixup_kinds_h p);
  Vfs.add vfs ~path:(spf "%s/%sGenInstrInfo.h" dir p.name) (gen_instr_info_h p);
  if p.variant_kinds <> [] then
    Vfs.add vfs ~path:(spf "%s/%sMCExpr.h" dir p.name) (mcexpr_target_h p);
  Vfs.add vfs
    ~path:(spf "llvm/BinaryFormat/ELFRelocs/%s.def" p.name)
    (elf_relocs_def p)
