lib/eval/regression.ml: List Printf Refbackend Vega_backend Vega_ir Vega_mc Vega_sim Vega_srclang Vega_target
