lib/eval/refbackend.ml: List Option Vega_backend Vega_corpus Vega_target
