lib/eval/metrics.mli: Vega Vega_ir Vega_target
