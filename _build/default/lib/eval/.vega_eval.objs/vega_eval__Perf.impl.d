lib/eval/perf.ml: List Metrics Refbackend Vega_backend Vega_ir Vega_sim Vega_srclang Vega_target
