lib/eval/effort.ml: List Metrics Option Vega_target
