lib/eval/metrics.ml: Array Hashtbl List Option Printf Regression String Vega Vega_corpus Vega_gumtree Vega_srclang Vega_target Vega_util
