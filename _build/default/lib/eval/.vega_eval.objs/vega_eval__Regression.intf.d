lib/eval/regression.mli: Vega_backend Vega_ir Vega_mc Vega_srclang Vega_target Vega_tdlang
