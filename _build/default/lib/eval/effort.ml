(** Table 4's manual-correction effort, reproduced as a calibrated model
    (the paper's numbers come from a two-developer human study; see
    DESIGN.md). Hours are per-module statement corrections times a
    per-module minutes-per-statement rate fitted to the paper's RISC-V
    totals for each developer. *)

module M = Vega_target.Module_id

type developer = { dev_name : string; rates : (M.t * float) list }
(** minutes of correction work per inaccurate statement *)

(* fitted from the paper's Table 3 (RISC-V "Manual Effort" statements) and
   Table 4 (hours): e.g. developer A: SEL 21.83h over 3747 stmts = 0.35
   min/stmt; OPT is denser per statement, REG trivial. *)
let developer_a =
  {
    dev_name = "Developer A (PhD candidate, compiler mid-ends)";
    rates =
      [
        (M.SEL, 0.35); (M.REG, 0.70); (M.OPT, 0.36); (M.SCH, 0.68);
        (M.EMI, 0.42); (M.ASS, 0.24); (M.DIS, 0.61);
      ];
  }

let developer_b =
  {
    dev_name = "Developer B (engineer, RISC-V performance)";
    rates =
      [
        (M.SEL, 0.28); (M.REG, 0.67); (M.OPT, 0.54); (M.SCH, 0.65);
        (M.EMI, 0.76); (M.ASS, 0.36); (M.DIS, 1.03);
      ];
  }

let manual_stmts_by_module (te : Metrics.target_eval) =
  List.map
    (fun (m, fns) ->
      ( m,
        List.fold_left
          (fun acc (f : Metrics.fn_eval) ->
            acc + max 0 (f.Metrics.fe_ref_stmts - f.Metrics.fe_acc_stmts))
          0 fns ))
    (Metrics.by_module te)

let hours dev te =
  List.map
    (fun (m, stmts) ->
      let rate = Option.value ~default:0.5 (List.assoc_opt m dev.rates) in
      (m, float_of_int stmts *. rate /. 60.0))
    (manual_stmts_by_module te)

let total_hours dev te = List.fold_left (fun a (_, h) -> a +. h) 0.0 (hours dev te)
