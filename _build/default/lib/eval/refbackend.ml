(** Reference backends: hooks/conventions assembled from the corpus's
    reference implementations — the "base compiler" of Sec. 4.1.4 that
    pass@1 substitutes generated functions into. *)

module C = Vega_corpus.Corpus
module B = Vega_backend

let sources_for (p : Vega_target.Profile.t) =
  List.filter_map
    (fun spec ->
      Option.map
        (fun f -> (spec.Vega_corpus.Spec.fname, f))
        (C.reference_inlined spec p))
    C.all_specs

let hooks_for vfs (p : Vega_target.Profile.t) =
  B.Hooks.create vfs ~target:p.Vega_target.Profile.name ~sources:(sources_for p)

let conv_for vfs hooks = B.Conv.make vfs hooks

let backend_for vfs p =
  let hooks = hooks_for vfs p in
  (hooks, conv_for vfs hooks)
