(** Canonical pretty-printing of BackendC.

    The printer fixes one spelling per AST so that statement alignment and
    templatization operate on a normalized token stream (the paper strips
    formatting noise in pre-processing; we never reintroduce it). *)

val expr : Ast.expr -> string
val stmt_flat : Ast.stmt -> string
(** One-line rendering of a statement (nested blocks inline); tests only. *)

val simple_stmt : Ast.stmt -> string
(** Body of a simple (non-compound) statement, without the trailing [';'].
    @raise Invalid_argument on compound statements. *)

val signature : Ast.func -> string
(** The function-definition line, e.g.
    ["unsigned ARMELFObjectWriter::getRelocType(MCValue Target, MCFixup Fixup, bool IsPCRel) {"]. *)
