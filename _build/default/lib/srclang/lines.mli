(** Linearization of a function into the paper's notion of statements.

    Sec. 3.1 defines a statement as "a line ending with any of ';', '{',
    '}'". This module flattens a parsed function into exactly those lines
    (the [S_1 .. S_k] of Fig. 2), which is the unit of alignment,
    templatization and model I/O throughout VEGA. *)

type kind =
  | Fundef  (** the signature line, [".... (args) {"] *)
  | Simple  (** declaration / assignment / call / return / break, ends [';'] *)
  | Open_if  (** ["if (cond) {"] *)
  | Open_else  (** ["} else {"] *)
  | Open_elseif  (** ["} else if (cond) {"] *)
  | Open_switch  (** ["switch (e) {"] *)
  | Open_while
  | Open_for
  | Case_label  (** ["case X:"] — the paper treats labels as statements *)
  | Default_label
  | Close  (** ["}"] *)

type t = { kind : kind; text : string }

val kind_name : kind -> string

val of_func : Ast.func -> t list
(** Flatten a function into statement lines, signature first, final ["}"]
    last. *)

val to_source : t list -> string
(** Join statement lines back into parseable source text. *)

val texts_to_source : string list -> string
(** Same, from raw line texts (as produced by the model). *)

val tokens_of : t -> string list
(** Canonical token spellings of one line; tokenization matches
    {!Lexer.tokenize}. Falls back to whitespace splitting if the line does
    not lex (possible for model-generated text). *)

val tokens_of_text : string -> string list
