(** Tokens of BackendC, the miniature C++-like language in which the
    corpus of backend interface functions is written.

    The token granularity matches what the paper's feature-selection stage
    needs: identifiers, scoped names ([A::b] lexes as [Id "A"; ColonColon;
    Id "b"]), literals, and punctuation. *)

type t =
  | Id of string
  | Int_lit of int
  | Str_lit of string
  | Char_lit of char
  | KwIf
  | KwElse
  | KwSwitch
  | KwCase
  | KwDefault
  | KwReturn
  | KwBreak
  | KwContinue
  | KwFor
  | KwWhile
  | KwTrue
  | KwFalse
  | KwConst
  | KwUnsigned
  | KwNullptr
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | Semi
  | Comma
  | Colon
  | ColonColon
  | Dot
  | Arrow
  | Question
  | Assign
  | PlusEq
  | MinusEq
  | OrEq
  | AndEq
  | ShlEq
  | ShrEq
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | AmpAmp
  | PipePipe
  | EqEq
  | NotEq
  | Lt
  | Gt
  | Le
  | Ge
  | Shl
  | Shr
  | Eof

val to_string : t -> string
(** Canonical source spelling of a token ([Eof] renders as [""]). *)

val equal : t -> t -> bool
