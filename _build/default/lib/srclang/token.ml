type t =
  | Id of string
  | Int_lit of int
  | Str_lit of string
  | Char_lit of char
  | KwIf
  | KwElse
  | KwSwitch
  | KwCase
  | KwDefault
  | KwReturn
  | KwBreak
  | KwContinue
  | KwFor
  | KwWhile
  | KwTrue
  | KwFalse
  | KwConst
  | KwUnsigned
  | KwNullptr
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | Semi
  | Comma
  | Colon
  | ColonColon
  | Dot
  | Arrow
  | Question
  | Assign
  | PlusEq
  | MinusEq
  | OrEq
  | AndEq
  | ShlEq
  | ShrEq
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | AmpAmp
  | PipePipe
  | EqEq
  | NotEq
  | Lt
  | Gt
  | Le
  | Ge
  | Shl
  | Shr
  | Eof

let to_string = function
  | Id s -> s
  | Int_lit n -> string_of_int n
  | Str_lit s -> Printf.sprintf "%S" s
  | Char_lit c -> Printf.sprintf "'%c'" c
  | KwIf -> "if"
  | KwElse -> "else"
  | KwSwitch -> "switch"
  | KwCase -> "case"
  | KwDefault -> "default"
  | KwReturn -> "return"
  | KwBreak -> "break"
  | KwContinue -> "continue"
  | KwFor -> "for"
  | KwWhile -> "while"
  | KwTrue -> "true"
  | KwFalse -> "false"
  | KwConst -> "const"
  | KwUnsigned -> "unsigned"
  | KwNullptr -> "nullptr"
  | LParen -> "("
  | RParen -> ")"
  | LBrace -> "{"
  | RBrace -> "}"
  | LBracket -> "["
  | RBracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Colon -> ":"
  | ColonColon -> "::"
  | Dot -> "."
  | Arrow -> "->"
  | Question -> "?"
  | Assign -> "="
  | PlusEq -> "+="
  | MinusEq -> "-="
  | OrEq -> "|="
  | AndEq -> "&="
  | ShlEq -> "<<="
  | ShrEq -> ">>="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | AmpAmp -> "&&"
  | PipePipe -> "||"
  | EqEq -> "=="
  | NotEq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Shl -> "<<"
  | Shr -> ">>"
  | Eof -> ""

let equal (a : t) (b : t) = a = b
