type kind =
  | Fundef
  | Simple
  | Open_if
  | Open_else
  | Open_elseif
  | Open_switch
  | Open_while
  | Open_for
  | Case_label
  | Default_label
  | Close

type t = { kind : kind; text : string }

let kind_name = function
  | Fundef -> "fundef"
  | Simple -> "simple"
  | Open_if -> "if"
  | Open_else -> "else"
  | Open_elseif -> "elseif"
  | Open_switch -> "switch"
  | Open_while -> "while"
  | Open_for -> "for"
  | Case_label -> "case"
  | Default_label -> "default"
  | Close -> "close"

let of_func (f : Ast.func) =
  let out = ref [] in
  let emit kind text = out := { kind; text } :: !out in
  let rec stmts body = List.iter stmt body
  and stmt (s : Ast.stmt) =
    match s with
    | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ | Ast.Return _ | Ast.Break | Ast.Continue
      ->
        emit Simple (Printer.simple_stmt s ^ ";")
    | Ast.If (c, t, e) ->
        emit Open_if (Printf.sprintf "if (%s) {" (Printer.expr c));
        stmts t;
        else_chain e
    | Ast.While (c, body) ->
        emit Open_while (Printf.sprintf "while (%s) {" (Printer.expr c));
        stmts body;
        emit Close "}"
    | Ast.For (init, cond, step, body) ->
        emit Open_for
          (Printf.sprintf "for (%s; %s; %s) {"
             (match init with Some s -> Printer.simple_stmt s | None -> "")
             (match cond with Some e -> Printer.expr e | None -> "")
             (match step with Some s -> Printer.simple_stmt s | None -> ""));
        stmts body;
        emit Close "}"
    | Ast.Switch (scrut, arms, default) ->
        emit Open_switch (Printf.sprintf "switch (%s) {" (Printer.expr scrut));
        List.iter
          (fun { Ast.labels; body } ->
            List.iter
              (fun l -> emit Case_label (Printf.sprintf "case %s:" (Printer.expr l)))
              labels;
            stmts body)
          arms;
        (match default with
        | [] -> ()
        | _ ->
            emit Default_label "default:";
            stmts default);
        emit Close "}"
  and else_chain = function
    | [] -> emit Close "}"
    | [ Ast.If (c, t, e) ] ->
        emit Open_elseif (Printf.sprintf "} else if (%s) {" (Printer.expr c));
        stmts t;
        else_chain e
    | e ->
        emit Open_else "} else {";
        stmts e;
        emit Close "}"
  in
  emit Fundef (Printer.signature f);
  stmts f.body;
  emit Close "}";
  List.rev !out

let to_source lines = String.concat "\n" (List.map (fun l -> l.text) lines)
let texts_to_source texts = String.concat "\n" texts

let tokens_of_text text =
  match Lexer.tokenize text with
  | toks -> List.map Token.to_string toks
  | exception Lexer.Error _ ->
      String.split_on_char ' ' text |> List.filter (fun s -> s <> "")

let tokens_of l = tokens_of_text l.text
