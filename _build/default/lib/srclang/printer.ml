let unop_str = function Ast.Neg -> "-" | Ast.Not -> "!" | Ast.Bnot -> "~"

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Rem -> "%"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Bxor -> "^"
  | Ast.Land -> "&&"
  | Ast.Lor -> "||"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"
  | Ast.Le -> "<="
  | Ast.Ge -> ">="

let assign_str = function
  | Ast.Set -> "="
  | Ast.Add_set -> "+="
  | Ast.Sub_set -> "-="
  | Ast.Or_set -> "|="
  | Ast.And_set -> "&="
  | Ast.Shl_set -> "<<="
  | Ast.Shr_set -> ">>="

(* Precedence levels; higher binds tighter. *)
let prec = function
  | Ast.Lor -> 1
  | Ast.Land -> 2
  | Ast.Bor -> 3
  | Ast.Bxor -> 4
  | Ast.Band -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Rem -> 10

let rec expr_prec level e =
  match e with
  | Ast.Int n -> string_of_int n
  | Ast.Str s -> Printf.sprintf "%S" s
  | Ast.Chr c -> Printf.sprintf "'%c'" c
  | Ast.Bool true -> "true"
  | Ast.Bool false -> "false"
  | Ast.Nullptr -> "nullptr"
  | Ast.Id s -> s
  | Ast.Scoped parts -> String.concat "::" parts
  | Ast.Call (f, args) -> Printf.sprintf "%s(%s)" f (args_str args)
  | Ast.Method (recv, m, args) ->
      Printf.sprintf "%s.%s(%s)" (expr_prec 100 recv) m (args_str args)
  | Ast.Member (recv, f) -> Printf.sprintf "%s.%s" (expr_prec 100 recv) f
  | Ast.Index (recv, i) -> Printf.sprintf "%s[%s]" (expr_prec 100 recv) (expr_prec 0 i)
  | Ast.Unop (op, a) -> Printf.sprintf "%s%s" (unop_str op) (expr_prec 90 a)
  | Ast.Binop (op, a, b) ->
      let p = prec op in
      let s =
        Printf.sprintf "%s %s %s" (expr_prec p a) (binop_str op) (expr_prec (p + 1) b)
      in
      if p < level then "(" ^ s ^ ")" else s
  | Ast.Ternary (c, t, f) ->
      let s =
        Printf.sprintf "%s ? %s : %s" (expr_prec 1 c) (expr_prec 0 t) (expr_prec 0 f)
      in
      if level > 0 then "(" ^ s ^ ")" else s
  | Ast.Cast (ty, a) -> Printf.sprintf "static_cast<%s>(%s)" ty (expr_prec 0 a)

and args_str args = String.concat ", " (List.map (expr_prec 0) args)

let expr e = expr_prec 0 e

let simple_stmt = function
  | Ast.Decl (ty, name, None) -> Printf.sprintf "%s %s" ty name
  | Ast.Decl (ty, name, Some init) -> Printf.sprintf "%s %s = %s" ty name (expr init)
  | Ast.Assign (op, lhs, rhs) ->
      Printf.sprintf "%s %s %s" (expr lhs) (assign_str op) (expr rhs)
  | Ast.Expr e -> expr e
  | Ast.Return None -> "return"
  | Ast.Return (Some e) -> Printf.sprintf "return %s" (expr e)
  | Ast.Break -> "break"
  | Ast.Continue -> "continue"
  | Ast.If _ | Ast.Switch _ | Ast.While _ | Ast.For _ ->
      invalid_arg "Printer.simple_stmt: compound statement"

let rec stmt_flat s =
  match s with
  | Ast.If (c, t, e) ->
      let els =
        match e with
        | [] -> ""
        | _ -> Printf.sprintf " else { %s }" (String.concat " " (List.map stmt_flat e))
      in
      Printf.sprintf "if (%s) { %s }%s" (expr c)
        (String.concat " " (List.map stmt_flat t))
        els
  | Ast.Switch (scrut, arms, default) ->
      let arm_str { Ast.labels; body } =
        String.concat " " (List.map (fun l -> Printf.sprintf "case %s:" (expr l)) labels)
        ^ " "
        ^ String.concat " " (List.map stmt_flat body)
      in
      let parts = List.map arm_str arms in
      let parts =
        match default with
        | [] -> parts
        | _ -> parts @ [ "default: " ^ String.concat " " (List.map stmt_flat default) ]
      in
      Printf.sprintf "switch (%s) { %s }" (expr scrut) (String.concat " " parts)
  | Ast.While (c, body) ->
      Printf.sprintf "while (%s) { %s }" (expr c)
        (String.concat " " (List.map stmt_flat body))
  | Ast.For (init, cond, step, body) ->
      Printf.sprintf "for (%s; %s; %s) { %s }"
        (match init with Some s -> simple_stmt s | None -> "")
        (match cond with Some e -> expr e | None -> "")
        (match step with Some s -> simple_stmt s | None -> "")
        (String.concat " " (List.map stmt_flat body))
  | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ | Ast.Return _ | Ast.Break | Ast.Continue ->
      simple_stmt s ^ ";"

let signature (f : Ast.func) =
  let params =
    String.concat ", "
      (List.map (fun { Ast.ptype; pname } -> ptype ^ " " ^ pname) f.params)
  in
  let qual = match f.cls with Some c -> c ^ "::" | None -> "" in
  Printf.sprintf "%s %s%s(%s) {" f.ret_type qual f.name params
