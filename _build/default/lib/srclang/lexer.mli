(** Hand-written lexer for BackendC.

    Comments ([//] and [/* */]) and whitespace are discarded, matching the
    paper's pre-processing step that strips non-functional elements. *)

exception Error of string
(** Raised on malformed input, with a message carrying line context. *)

val tokenize : string -> Token.t list
(** Tokenize a full source string. The result never contains [Token.Eof];
    callers append it as a sentinel if they need one. *)
