lib/srclang/lines.pp.mli: Ast
