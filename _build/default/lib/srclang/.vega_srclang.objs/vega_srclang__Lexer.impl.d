lib/srclang/lexer.pp.ml: Buffer List Printf String Token
