lib/srclang/lines.pp.ml: Ast Lexer List Printer Printf String Token
