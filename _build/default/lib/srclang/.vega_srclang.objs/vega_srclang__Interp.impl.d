lib/srclang/interp.pp.ml: Ast Char Hashtbl List Printf String
