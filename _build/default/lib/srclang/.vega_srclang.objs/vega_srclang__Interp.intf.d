lib/srclang/interp.pp.mli: Ast
