lib/srclang/token.pp.mli:
