lib/srclang/lexer.pp.mli: Token
