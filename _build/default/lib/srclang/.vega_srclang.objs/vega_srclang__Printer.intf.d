lib/srclang/printer.pp.mli: Ast
