lib/srclang/parser.pp.ml: Array Ast Buffer Lexer List Printf Result String Token
