lib/srclang/printer.pp.ml: Ast List Printf String
