lib/srclang/token.pp.ml: Printf
