lib/srclang/parser.pp.mli: Ast
