(** Abstract syntax of BackendC.

    A deliberately small C++ subset: enough to express the bodies of LLVM
    backend interface functions (relocation selection, fixup application,
    operand lowering, scheduling queries, emission, parsing, decoding)
    while remaining interpretable (see {!Interp}).

    Naming note: [Scoped ["ARM"; "fixup_arm_movt_hi16"]] represents the
    C++ qualified name [ARM::fixup_arm_movt_hi16]; these qualified names
    are exactly the target-specific values the paper's feature selection
    extracts. *)

type unop = Neg | Not | Bnot [@@deriving show { with_path = false }, eq]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge
[@@deriving show { with_path = false }, eq]

type expr =
  | Int of int
  | Str of string
  | Chr of char
  | Bool of bool
  | Nullptr
  | Id of string
  | Scoped of string list  (** [A::B::c] *)
  | Call of string * expr list  (** free-function call *)
  | Method of expr * string * expr list  (** [recv.m(args)] / [recv->m(args)] *)
  | Member of expr * string  (** [recv.f] / [recv->f] *)
  | Index of expr * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Cast of string * expr  (** [static_cast<T>(e)] or C-style [(unsigned)e] *)
[@@deriving show { with_path = false }, eq]

type assign_op = Set | Add_set | Sub_set | Or_set | And_set | Shl_set | Shr_set
[@@deriving show { with_path = false }, eq]

type stmt =
  | Decl of string * string * expr option  (** type, name, initializer *)
  | Assign of assign_op * expr * expr
  | Expr of expr
  | If of expr * stmt list * stmt list
  | Switch of expr * arm list * stmt list  (** scrutinee, arms, default body *)
  | Return of expr option
  | Break
  | Continue
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
[@@deriving show { with_path = false }, eq]

and arm = { labels : expr list; body : stmt list }
(** One [case] group; [labels] lists the fallthrough case values that share
    [body]. A body not ending in [Break]/[Return] falls through to the next
    arm, as in C. *)
[@@deriving show { with_path = false }, eq]

type param = { ptype : string; pname : string }
[@@deriving show { with_path = false }, eq]

type func = {
  ret_type : string;
  cls : string option;  (** enclosing class for [Cls::name] definitions *)
  name : string;
  params : param list;
  body : stmt list;
}
[@@deriving show { with_path = false }, eq]
