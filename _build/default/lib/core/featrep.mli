(** Feature representation (Sec. 3.2.3) and CodeBE I/O encoding
    (Sec. 3.3).

    Every statement instance maps to a feature vector
    [FV_k = <T_k, V_k>]: the tokenized statement template plus property
    values. The model-facing encoding works with {e copy registers}: the
    full words produced by applying the slot patterns to the instance's
    resolved property values. Inputs spell register contents as subword
    pieces; outputs reference them with [<COPY_k>] tokens, so the decoder
    can emit identifiers it has never seen (our stand-in for UniXcoder's
    byte-level BPE). *)

type fv = {
  fname : string;
  col : int;  (** -1 for the function-definition statement *)
  line : int;  (** line within the column's unit *)
  inst : int;  (** instance index within a repeated column *)
  target : string;
  present : bool;
  score : float;  (** Eq. (1) confidence used as training signal *)
  registers : string list;  (** full words available for copying *)
  input : string list;
  output : string list option;  (** None on the generation side *)
}

val max_registers : int
val max_input_len : int
val max_output_len : int

val render_line :
  Featsel.t -> Template.column -> col:int -> line:int -> Resolve.inst_values ->
  Template.stmt_template -> string list option
(** Deterministic rendering of a template line from resolved property
    values — the fallback of template-guided repair (None when no slot
    value could be resolved). *)

val registers_of :
  Featsel.t -> Template.column -> col:int -> Resolve.inst_values -> string list
(** Apply the column's slot patterns to resolved values, yielding the
    instance's copy-register words in (line, slot, word) order. *)

val input_of :
  fname:string ->
  st:Template.stmt_template ->
  view:Featsel.target_view ->
  registers:string list ->
  repeated:bool ->
  inst:int ->
  string list
(** Build the input token sequence [I_k]. *)

val output_of :
  st:Template.stmt_template ->
  present:bool ->
  score:float ->
  registers:string list ->
  line_tokens:string list option ->
  inst:int ->
  string list
(** Build the output sequence [O_k]: score bucket token, then either the
    statement tokens (with register references substituted) or, when
    absent, the raw template tokens. *)

val decode_output :
  registers:string list -> inst:int -> string list -> float option * string list
(** Interpret a generated output sequence: extract the leading confidence
    bucket and substitute [<COPY_k>]/[<IDX>] references. *)

val training_fvs :
  Featsel.t -> Template.t -> max_inst_per_column:int -> fv list
(** All training feature vectors of one function group (over the
    template's training targets), including absent-statement examples. *)

val generation_fvs :
  Featsel.t ->
  Template.t ->
  Resolve.hints ->
  Featsel.target_view ->
  (fv * Resolve.inst_values) list
(** Feature vectors for a new target (Sec. 3.4): instances enumerated and
    values resolved from its description files; [output = None]. *)
