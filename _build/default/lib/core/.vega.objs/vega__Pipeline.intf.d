lib/core/pipeline.mli: Codebe Featsel Generate Resolve Retrieval Template Vega_corpus
