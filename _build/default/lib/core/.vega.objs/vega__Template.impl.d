lib/core/template.ml: Array Fun Hashtbl List Option Preprocess Printf String Vega_gumtree Vega_target Vega_util
