lib/core/generate.ml: Codebe Confidence Featrep Featsel Float Fun List Resolve String Template Vega_target
