lib/core/featsel.mli: Template Vega_tdlang
