lib/core/pipeline.ml: Codebe Featrep Featsel Generate Hashtbl List Logs Option Preprocess Resolve Retrieval Template Vega_corpus Vega_target
