lib/core/confidence.ml: Featsel Float List Template
