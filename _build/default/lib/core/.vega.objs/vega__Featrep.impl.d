lib/core/featrep.ml: Array Confidence Featsel Fun List Option Preprocess Resolve Template Vega_nn Vega_util
