lib/core/codebe.mli: Vega_nn
