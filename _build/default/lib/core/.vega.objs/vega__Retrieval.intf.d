lib/core/retrieval.mli: Featrep Generate
