lib/core/preprocess.ml: Array List Printf String Vega_srclang Vega_util
