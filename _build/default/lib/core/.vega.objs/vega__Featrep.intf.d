lib/core/featrep.mli: Featsel Resolve Template
