lib/core/preprocess.mli: Vega_srclang
