lib/core/forkflow.mli: Vega_corpus Vega_srclang Vega_target
