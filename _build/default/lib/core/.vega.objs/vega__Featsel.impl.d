lib/core/featsel.ml: Array Hashtbl List Option Preprocess String Template Vega_tdlang Vega_util
