lib/core/confidence.mli: Featsel Template
