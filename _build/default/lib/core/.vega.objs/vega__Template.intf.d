lib/core/template.mli: Preprocess Vega_target
