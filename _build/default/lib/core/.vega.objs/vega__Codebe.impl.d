lib/core/codebe.ml: Array List Logs Vega_nn Vega_util
