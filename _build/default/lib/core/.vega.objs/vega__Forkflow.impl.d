lib/core/forkflow.ml: List Option String Vega_corpus Vega_srclang Vega_target Vega_util
