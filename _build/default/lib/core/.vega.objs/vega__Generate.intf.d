lib/core/generate.mli: Featrep Featsel Resolve Template Vega_target
