lib/core/resolve.mli: Featsel Preprocess Template
