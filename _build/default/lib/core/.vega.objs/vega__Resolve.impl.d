lib/core/resolve.ml: Featsel Fun Hashtbl List Option Preprocess String Template Vega_util
