lib/core/retrieval.ml: Array Featrep Hashtbl List Option
