(** The ForkFlow baseline (Sec. 4.2): fork each function from an existing
    backend — the paper forks from MIPS, the most similar architecture —
    and apply the mechanical renames of a first porting pass
    (case-preserving substitution of the source target's name). Values
    tied to the source ISA (fixup members, opcodes, latencies) survive the
    rename and are wrong for the new target, which is why ForkFlow scores
    below 8% accuracy. *)

val fork_source : string
(** Name of the backend functions are forked from ("Mips"). *)

val rename :
  src:Vega_target.Profile.t -> dst:Vega_target.Profile.t -> string -> string
(** Case-preserving target-name substitution on one identifier/string. *)

val fork_function :
  src:Vega_target.Profile.t ->
  dst:Vega_target.Profile.t ->
  Vega_srclang.Ast.func ->
  Vega_srclang.Ast.func
(** Fork one reference implementation to the destination target. *)

val fork_backend :
  dst:Vega_target.Profile.t -> (Vega_corpus.Spec.t * Vega_srclang.Ast.func) list
(** Fork every interface function the fork source implements. *)
