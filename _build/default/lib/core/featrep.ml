module Vocab = Vega_nn.Vocab
module Strutil = Vega_util.Strutil

type fv = {
  fname : string;
  col : int;
  line : int;
  inst : int;
  target : string;
  present : bool;
  score : float;
  registers : string list;
  input : string list;
  output : string list option;
}

let max_registers = 8
let max_input_len = 72
let max_output_len = 24
let max_subwords = 3
let max_template_tokens = 22

(* ------------------------------------------------------------------ *)
(* Registers                                                            *)

let apply_pattern pat values idx =
  List.filter_map
    (fun item ->
      match item with
      | Featsel.Plit _ -> None
      | Featsel.Pindex -> Some (string_of_int idx)
      | Featsel.Pprop p ->
          Option.map (fun v -> v) (List.assoc_opt p values)
      | Featsel.Pcompose { pre; prop; post } ->
          Option.map (fun v -> pre ^ v ^ post) (List.assoc_opt prop values))
    pat

let registers_of analysis (column : Template.column) ~col
    (iv : Resolve.inst_values) =
  let regs = ref [] in
  List.iteri
    (fun li st ->
      List.iter
        (fun si ->
          match Featsel.pattern analysis ~col ~line:li ~slot:si with
          | Some pat ->
              List.iter
                (fun w -> if List.length !regs < max_registers then regs := w :: !regs)
                (apply_pattern pat iv.Resolve.iv_values iv.Resolve.iv_index)
          | None -> ())
        (List.init st.Template.nslots Fun.id))
    column.Template.unit;
  List.rev !regs

(* Deterministic rendering of one template line from resolved values:
   the fallback used by template-guided repair when the decoder emits a
   malformed token sequence. *)
let render_line analysis (column : Template.column) ~col ~line
    (iv : Resolve.inst_values) (st : Template.stmt_template) =
  ignore column;
  let slots =
    List.init st.Template.nslots (fun si ->
        match Featsel.pattern analysis ~col ~line ~slot:si with
        | Some pat -> apply_pattern pat iv.Resolve.iv_values iv.Resolve.iv_index
        | None -> [])
  in
  if st.Template.nslots > 0 && List.for_all (fun s -> s = []) slots then None
  else Some (Template.render_instance st slots)

(* ------------------------------------------------------------------ *)
(* Token sequences                                                      *)

let subwords v =
  let ws = List.map Strutil.lowercase (Strutil.camel_words v) in
  let ws = if ws = [] then [ Strutil.lowercase v ] else ws in
  List.filteri (fun i _ -> i < max_subwords) ws

let clip n l = List.filteri (fun i _ -> i < n) l

let input_of ~fname ~(st : Template.stmt_template) ~view ~registers ~repeated
    ~inst =
  let tpl_tokens = clip max_template_tokens (Template.tokens_of_template st) in
  let indep =
    List.map (fun (_, b) -> if b then "T" else "F") view.Featsel.independent
  in
  let regs =
    List.concat
      (List.mapi
         (fun k w -> (Vocab.copy_token k :: subwords w) @ [ "<SEP>" ])
         registers)
  in
  let idx_part =
    if repeated then [ Vocab.index_token; string_of_int (min inst 30) ] else []
  in
  clip max_input_len
    (("<CLS>" :: ("F#" ^ fname) :: ("K#" ^ st.Template.kind) :: tpl_tokens)
    @ [ "<SEP>" ] @ indep @ [ "<SEP>" ] @ regs @ idx_part)

(* Substitute register words (and the instance index) back by reference
   tokens so the output vocabulary stays closed. *)
let encode_line_tokens ~registers ~inst tokens =
  List.map
    (fun tok ->
      let rec find k = function
        | [] -> None
        | r :: _ when r = tok -> Some k
        | _ :: rest -> find (k + 1) rest
      in
      match find 0 registers with
      | Some k -> Vocab.copy_token k
      | None -> if tok = string_of_int inst then Vocab.index_token else tok)
    tokens

let output_of ~(st : Template.stmt_template) ~present ~score ~registers
    ~line_tokens ~inst =
  let body =
    match (present, line_tokens) with
    | true, Some tokens -> encode_line_tokens ~registers ~inst tokens
    | true, None -> Template.tokens_of_template st
    | false, _ -> Template.tokens_of_template st
  in
  clip max_output_len (Vocab.score_token (if present then score else 0.0) :: body)

let decode_output ~registers ~inst tokens =
  let regs = Array.of_list registers in
  match tokens with
  | [] -> (None, [])
  | first :: rest ->
      let score, body =
        match Vocab.score_of_token first with
        | Some s -> (Some s, rest)
        | None -> (None, tokens)
      in
      let body =
        List.map
          (fun tok ->
            match Vocab.copy_of_token tok with
            | Some k when k < Array.length regs -> regs.(k)
            | Some _ -> tok
            | None -> if tok = Vocab.index_token then string_of_int inst else tok)
          body
      in
      (score, body)

(* ------------------------------------------------------------------ *)
(* Training and generation FV sets                                      *)

let indexed_columns (tpl : Template.t) =
  (-1, Template.signature_column tpl)
  :: List.mapi (fun i c -> (i, c)) tpl.Template.columns

let training_fvs analysis (tpl : Template.t) ~max_inst_per_column =
  let out = ref [] in
  let emit fv = out := fv :: !out in
  List.iter
    (fun (view : Featsel.target_view) ->
      let tname = view.tv_target in
      List.iter
        (fun (ci, (column : Template.column)) ->
          match List.assoc_opt tname column.Template.occurrences with
          | Some insts ->
              List.iteri
                (fun idx inst ->
                  if idx < max_inst_per_column then begin
                    let iv = Resolve.training_values analysis tpl ~col:ci inst idx in
                    let registers = registers_of analysis column ~col:ci iv in
                    List.iteri
                      (fun li st ->
                        let line = List.nth inst li in
                        let score =
                          Confidence.statement_score
                            ~slot_candidates:
                              (Confidence.slot_candidate_counts analysis view
                                 ~col:ci ~line:li st)
                            st ~present:true
                        in
                        emit
                          {
                            fname = tpl.Template.fname;
                            col = ci;
                            line = li;
                            inst = idx;
                            target = tname;
                            present = true;
                            score;
                            registers;
                            input =
                              input_of ~fname:tpl.Template.fname ~st ~view
                                ~registers ~repeated:column.Template.repeated
                                ~inst:idx;
                            output =
                              Some
                                (output_of ~st ~present:true ~score ~registers
                                   ~line_tokens:(Some line.Preprocess.tokens)
                                   ~inst:idx);
                          })
                      column.Template.unit
                  end)
                insts
          | None ->
              (* absent statement: one FV per unit line, score 0 *)
              List.iteri
                (fun li st ->
                  emit
                    {
                      fname = tpl.Template.fname;
                      col = ci;
                      line = li;
                      inst = 0;
                      target = tname;
                      present = false;
                      score = 0.0;
                      registers = [];
                      input =
                        input_of ~fname:tpl.Template.fname ~st ~view
                          ~registers:[] ~repeated:column.Template.repeated
                          ~inst:0;
                      output =
                        Some
                          (output_of ~st ~present:false ~score:0.0 ~registers:[]
                             ~line_tokens:None ~inst:0);
                    })
                column.Template.unit)
        (indexed_columns tpl))
    analysis.Featsel.views;
  List.rev !out

let generation_fvs analysis (tpl : Template.t) hints (view : Featsel.target_view)
    =
  let out = ref [] in
  List.iter
    (fun (ci, (column : Template.column)) ->
      let ivs = Resolve.enumerate_instances analysis tpl hints view ~col:ci column in
      List.iter
        (fun (iv : Resolve.inst_values) ->
          let registers = registers_of analysis column ~col:ci iv in
          List.iteri
            (fun li st ->
              out :=
                ( {
                    fname = tpl.Template.fname;
                    col = ci;
                    line = li;
                    inst = iv.Resolve.iv_index;
                    target = view.tv_target;
                    present = true;
                    score = 0.0;
                    registers;
                    input =
                      input_of ~fname:tpl.Template.fname ~st ~view ~registers
                        ~repeated:column.Template.repeated
                        ~inst:iv.Resolve.iv_index;
                    output = None;
                  },
                  iv )
                :: !out)
            column.Template.unit)
        ivs)
    (indexed_columns tpl);
  List.rev !out
