(** CodeBE: the fine-tuned model component (Sec. 3.3).

    Wraps {!Vega_nn.Transformer} with the vocabulary built from training
    sequences, mini-batch training with Adam + cross-entropy, greedy
    inference with per-token probabilities, and the Exact Match metric
    used on the verification set (Sec. 4.1.2). *)

type t

type train_config = {
  epochs : int;
  lr : float;
  batch_size : int;
  d_model : int;
  heads : int;
  d_ff : int;
  n_layers : int;
  max_len : int;
  max_pairs : int;  (** subsample bound on training pairs per epoch *)
  seed : int;
}

val default_train_config : train_config
val tiny_train_config : train_config
(** Small configuration for unit tests. *)

type arch =
  | Transformer  (** CodeBE-mini, the UniXcoder stand-in (default) *)
  | Rnn  (** GRU seq2seq: the "RNN-based VEGA" baseline of Sec. 4.1.2 *)

val train :
  ?arch:arch ->
  ?progress:(int -> float -> unit) ->
  train_config ->
  (string list * string list) list ->
  t
(** [train cfg pairs] — fine-tune on (input tokens, output tokens). *)

val infer : t -> string list -> string list * float array
(** Greedy decode: output tokens and their probabilities. *)

val vocab : t -> Vega_nn.Vocab.t
val n_params : t -> int

val exact_match : t -> (string list * string list) list -> float
(** Fraction of pairs whose greedy decode equals the reference. *)

val mean_token_prob : float array -> float
(** Geometric-mean-free simple mean used for confidence blending. *)
