module Lcs = Vega_util.Lcs

type tpl_token = Tok of string | Slot of int
type stmt_template = { kind : string; items : tpl_token list; nslots : int }

type column = {
  unit : stmt_template list;
  repeated : bool;
  occurrences : (string * Preprocess.cline list list) list;
}

type t = {
  fname : string;
  module_ : Vega_target.Module_id.t;
  signature : stmt_template;
  signatures : (string * Preprocess.cline) list;
  columns : column list;
  targets : string list;
}

let tokens_of_template tpl =
  List.map
    (function Tok t -> t | Slot k -> Printf.sprintf "<SV%d>" k)
    tpl.items

(* ------------------------------------------------------------------ *)
(* Statement templates                                                 *)

let build_stmt_template kind (variants : string list list) =
  match variants with
  | [] -> { kind; items = []; nslots = 0 }
  | _ ->
      let rep =
        List.fold_left
          (fun acc v -> if List.length v > List.length acc then v else acc)
          (List.hd variants) variants
      in
      let rep_arr = Array.of_list rep in
      let n = Array.length rep_arr in
      (* matched.(i) = how many variants matched rep position i via LCS;
         gap_content.(g) = does any variant put tokens in gap g (between
         common positions)? computed after common is known, so first
         collect per-variant pair lists. *)
      let nv = List.length variants in
      let matched = Array.make n 0 in
      let all_pairs =
        List.map
          (fun v ->
            let v_arr = Array.of_list v in
            let pairs = Lcs.lcs ~eq:String.equal rep_arr v_arr in
            List.iter (fun (ri, _) -> matched.(ri) <- matched.(ri) + 1) pairs;
            (v_arr, pairs))
          variants
      in
      let common = Array.init n (fun i -> matched.(i) = nv) in
      let common_positions =
        List.filter (fun i -> common.(i)) (List.init n Fun.id)
      in
      let ncommon = List.length common_positions in
      (* gap g lies before common position g (g in 0..ncommon); does any
         variant have content there? For a variant with pairs, content in
         gap g = tokens strictly between the matches of common positions
         g-1 and g. Rep content in gap counts too. *)
      let common_arr = Array.of_list common_positions in
      let gap_has = Array.make (ncommon + 1) false in
      (* rep's own non-common tokens *)
      let gap_of_rep_pos i =
        (* number of common positions < i *)
        let rec go g = if g < ncommon && common_arr.(g) < i then go (g + 1) else g in
        go 0
      in
      for i = 0 to n - 1 do
        if not common.(i) then gap_has.(gap_of_rep_pos i) <- true
      done;
      List.iter
        (fun (v_arr, pairs) ->
          (* v position of the match of each common rep position *)
          let vpos = Array.make ncommon (-1) in
          List.iter
            (fun (ri, vi) ->
              if common.(ri) then begin
                let rec idx g =
                  if g >= ncommon then ()
                  else if common_arr.(g) = ri then vpos.(g) <- vi
                  else idx (g + 1)
                in
                idx 0
              end)
            pairs;
          (* gap g spans v indices (vpos.(g-1), vpos.(g)) exclusive *)
          for g = 0 to ncommon do
            let lo = if g = 0 then -1 else vpos.(g - 1) in
            let hi = if g = ncommon then Array.length v_arr else vpos.(g) in
            if hi - lo > 1 then gap_has.(g) <- true
          done)
        all_pairs;
      let items = ref [] and nslots = ref 0 in
      for g = 0 to ncommon do
        if gap_has.(g) then begin
          items := Slot !nslots :: !items;
          incr nslots
        end;
        if g < ncommon then items := Tok rep_arr.(common_arr.(g)) :: !items
      done;
      { kind; items = List.rev !items; nslots = !nslots }

let match_instance tpl tokens =
  let toks = Array.of_list tokens in
  let n = Array.length toks in
  let values = Array.make (max 1 tpl.nslots) [] in
  let rec go items pos =
    match items with
    | [] -> if pos = n then Some () else None
    | Tok t :: rest ->
        if pos < n && toks.(pos) = t then go rest (pos + 1) else None
    | Slot k :: rest -> (
        (* slot extends until the next anchor token (or end) *)
        match rest with
        | [] ->
            values.(k) <- Array.to_list (Array.sub toks pos (n - pos));
            Some ()
        | Tok t :: _ ->
            (* choose the shortest slot whose following anchor matches and
               lets the remainder match; try successive anchor positions *)
            let rec try_at p =
              if p >= n then None
              else if toks.(p) = t then begin
                let saved = Array.copy values in
                values.(k) <- Array.to_list (Array.sub toks pos (p - pos));
                match go rest p with
                | Some () -> Some ()
                | None ->
                    Array.blit saved 0 values 0 (Array.length saved);
                    try_at (p + 1)
              end
              else try_at (p + 1)
            in
            try_at pos
        | Slot _ :: _ ->
            (* adjacent slots: give everything to the first *)
            values.(k) <- [];
            go rest pos)
  in
  match go tpl.items 0 with
  | Some () -> Some (Array.to_list (Array.sub values 0 tpl.nslots))
  | None -> None

let render_instance tpl slot_values =
  let values = Array.of_list slot_values in
  List.concat_map
    (function
      | Tok t -> [ t ]
      | Slot k -> if k < Array.length values then values.(k) else [])
    tpl.items

(* ------------------------------------------------------------------ *)
(* Function templates                                                  *)

let head_of (item : Preprocess.citem) = Preprocess.item_head item

let item_as_alignable (item : Preprocess.citem) =
  let h = head_of item in
  (h.Preprocess.kind, h.Preprocess.tokens)

(* Column under construction: pivot item index or insertion, with
   per-target occurrences collected progressively. *)
type proto = {
  mutable occs : (string * Preprocess.cline list list) list;
  mutable any_repeat : bool;
}

let occurrences_of (item : Preprocess.citem) =
  match item with
  | Preprocess.Single l -> [ [ l ] ]
  | Preprocess.Repeat insts -> insts

let build ~fname ~module_ impls ~signature_lines =
  let targets = List.map fst impls in
  (* pivot: implementation with the most items *)
  let pivot_target, pivot_items =
    List.fold_left
      (fun (bt, bi) (t, items) ->
        if List.length items > List.length bi then (t, items) else (bt, bi))
      (match impls with
      | (t, items) :: _ -> (t, items)
      | [] -> invalid_arg "Template.build: empty group")
      impls
  in
  let pivot_arr = Array.of_list pivot_items in
  let npivot = Array.length pivot_arr in
  (* protos: one per pivot item, plus growing inserted columns encoded as
     (position, proto) with position = pivot index they follow. *)
  let protos =
    Array.init npivot (fun k ->
        {
          occs = [ (pivot_target, occurrences_of pivot_arr.(k)) ];
          any_repeat =
            (match pivot_arr.(k) with
            | Preprocess.Repeat _ -> true
            | Preprocess.Single _ -> false);
        })
  in
  let inserted : (int * proto) list ref = ref [] in
  let pivot_align = Array.map item_as_alignable pivot_arr in
  List.iter
    (fun (tname, items) ->
      if tname <> pivot_target then begin
        let arr = Array.of_list items in
        let align_arr = Array.map item_as_alignable arr in
        let slots = Vega_gumtree.Stmt_align.align pivot_align align_arr in
        let last_pivot = ref (-1) in
        List.iter
          (fun { Vega_gumtree.Stmt_align.left; right } ->
            match (left, right) with
            | Some pi, Some vi ->
                last_pivot := pi;
                let proto = protos.(pi) in
                proto.occs <- (tname, occurrences_of arr.(vi)) :: proto.occs;
                (match arr.(vi) with
                | Preprocess.Repeat _ -> proto.any_repeat <- true
                | Preprocess.Single _ -> ())
            | Some pi, None -> last_pivot := pi
            | None, Some vi ->
                (* statement with no pivot counterpart: new column after
                   the last matched pivot position *)
                let proto =
                  {
                    occs = [ (tname, occurrences_of arr.(vi)) ];
                    any_repeat =
                      (match arr.(vi) with
                      | Preprocess.Repeat _ -> true
                      | Preprocess.Single _ -> false);
                  }
                in
                inserted := (!last_pivot, proto) :: !inserted
            | None, None -> ())
          slots
      end)
    impls;
  (* order: pivot columns with inserted columns spliced after their anchor *)
  let ordered = ref [] in
  let emit_inserted anchor =
    List.iter
      (fun (pos, proto) -> if pos = anchor then ordered := proto :: !ordered)
      (List.rev !inserted)
  in
  emit_inserted (-1);
  for k = 0 to npivot - 1 do
    ordered := protos.(k) :: !ordered;
    emit_inserted k
  done;
  let protos = List.rev !ordered in
  (* finalize columns *)
  let columns =
    List.filter_map
      (fun proto ->
        let occs = List.rev proto.occs in
        (* unit length: majority across occurrences *)
        let lengths =
          List.concat_map
            (fun (_, insts) -> List.map List.length insts)
            occs
        in
        match lengths with
        | [] -> None
        | _ ->
            let counts = Hashtbl.create 4 in
            List.iter
              (fun l ->
                Hashtbl.replace counts l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
              lengths;
            let unit_len, _ =
              Hashtbl.fold
                (fun l c (bl, bc) -> if c > bc then (l, c) else (bl, bc))
                counts (0, 0)
            in
            let occs =
              List.filter_map
                (fun (t, insts) ->
                  match
                    List.filter (fun inst -> List.length inst = unit_len) insts
                  with
                  | [] -> None
                  | kept -> Some (t, kept))
                occs
            in
            if occs = [] then None
            else
              let unit =
                List.init unit_len (fun j ->
                    let variants =
                      List.concat_map
                        (fun (_, insts) ->
                          List.map
                            (fun inst ->
                              (List.nth inst j).Preprocess.tokens)
                            insts)
                        occs
                    in
                    let kind =
                      (List.nth (List.hd (snd (List.hd occs))) j).Preprocess.kind
                    in
                    build_stmt_template kind variants)
              in
              Some { unit; repeated = proto.any_repeat; occurrences = occs })
      protos
  in
  let signature =
    build_stmt_template "fundef"
      (List.map (fun (_, l) -> l.Preprocess.tokens) signature_lines)
  in
  { fname; module_; signature; signatures = signature_lines; columns; targets }

let presence (_ : t) col target = List.mem_assoc target col.occurrences

(* The function-definition statement viewed as a pseudo-column (used with
   column index -1 by feature selection and generation). *)
let signature_column t =
  {
    unit = [ t.signature ];
    repeated = false;
    occurrences = List.map (fun (tn, l) -> (tn, [ [ l ] ])) t.signatures;
  }

let stmt_count t =
  1 + List.fold_left (fun acc c -> acc + List.length c.unit) 0 t.columns
