(** Templatization (Sec. 3.2.1): abstract a function group into a function
    template of statement templates, separating common code from variant
    placeholders.

    A function template is an ordered list of columns. A column is either
    a single statement or a repeated unit (the collapsed [case X: return
    Y;] arms); each column records, per target, the concrete instances
    observed. Statement templates carry [Tok]/[Slot] items; slots are the
    paper's [SV] placeholders holding target-specific values. *)

type tpl_token = Tok of string | Slot of int

type stmt_template = { kind : string; items : tpl_token list; nslots : int }

type column = {
  unit : stmt_template list;  (** length 1 for single statements *)
  repeated : bool;
  occurrences : (string * Preprocess.cline list list) list;
      (** target -> instances (each instance is [unit]-many lines); a
          target absent from the list does not implement this statement *)
}

type t = {
  fname : string;  (** interface function name *)
  module_ : Vega_target.Module_id.t;
  signature : stmt_template;  (** template of the function-definition line *)
  signatures : (string * Preprocess.cline) list;
      (** per-target signature lines the template was built from *)
  columns : column list;
  targets : string list;  (** all targets contributing to the group *)
}

val tokens_of_template : stmt_template -> string list
(** Rendering with slots as ["<SV0>"], ["<SV1>"], ... *)

val build_stmt_template : string -> string list list -> stmt_template
(** [build_stmt_template kind variants] — common tokens are those every
    variant agrees on (via LCS against the longest variant); maximal
    disagreement gaps become slots. *)

val match_instance : stmt_template -> string list -> string list list option
(** Align a concrete token list against a template; [Some values] gives
    per-slot token lists. [None] when the common anchors cannot be matched
    in order. *)

val render_instance : stmt_template -> string list list -> string list
(** Inverse of {!match_instance}: substitute per-slot token lists. *)

val build : fname:string -> module_:Vega_target.Module_id.t ->
  (string * Preprocess.citem list) list ->
  signature_lines:(string * Preprocess.cline) list -> t
(** [build ~fname ~module_ impls ~signature_lines] constructs the function
    template from pre-processed implementations (target name ->
    collapsed items), with per-target signature lines aligned into
    [signature]. *)

val presence : t -> column -> string -> bool
(** Does the target implement this column (the paper's [has])? *)

val signature_column : t -> column
(** The function-definition statement as a pseudo-column (used with
    column index -1 by feature selection and generation). *)

val stmt_count : t -> int
(** Number of statement templates (columns counted by unit length) plus
    the signature. *)
