(** Target-side value resolution (Sec. 3.4).

    Training side: extract, per statement instance, the concrete value of
    every dependent property (the V_k of Fig. 3(e)).

    Generation side: enumerate the instances a column should have for a
    new target (one per candidate of the column's driving property for
    repeated columns) and resolve every dependent property's value from
    the target's description files, ranking candidates by name similarity
    to the driving value plus slot hint words mined from training values
    (the mechanism that makes Err-V mistakes possible, as in Table 2). *)

type inst_values = {
  iv_index : int;
  iv_values : (string * string) list;
      (** dependent property -> raw value; missing entry = NULL *)
}

type hints
(** Per-slot word-frequency statistics of training values. *)

val collect_hints : Featsel.t -> Template.t -> hints

val training_values :
  Featsel.t -> Template.t -> col:int -> Preprocess.cline list -> int -> inst_values
(** [training_values analysis tpl ~col inst idx] — concrete property
    values of one training instance (unit lines) at index [idx]. *)

val presence_estimate :
  Featsel.t -> Template.t -> Template.column -> Featsel.target_view -> bool
(** The paper's has(S_k) for a new target: true iff every independent
    property that exactly correlates with the column's presence across
    training targets holds in the target's view (majority presence when
    no correlate exists). *)

val driving_prop : Featsel.t -> col:int -> Template.column -> string option
(** The dependent property that enumerates a repeated column's instances
    (the first property referenced by the unit's slot patterns). *)

val ordered_driving : Featsel.t -> Template.t -> col:int -> Template.column -> bool
(** True when, for every training target, instance j's driving value is
    candidate j in file order (e.g. switches listing a whole enum). *)

val score_candidate :
  hints -> col:int -> line:int -> slot:int -> driving:string option -> string -> float
(** Ranking score of one candidate value. *)

val enumerate_instances :
  Featsel.t ->
  Template.t ->
  hints ->
  Featsel.target_view ->
  col:int ->
  Template.column ->
  inst_values list
(** Instances for a new target, with resolved values. Empty when the
    driving property has no candidates (statement will be absent). *)

val max_instances : int
