module Ast = Vega_srclang.Ast
module Lines = Vega_srclang.Lines

type cline = { kind : string; tokens : string list }
type citem = Single of cline | Repeat of cline list list

(* ------------------------------------------------------------------ *)
(* Inlining                                                            *)

let inline_helpers (f : Ast.func) helpers =
  match f.body with
  | [ Ast.Return (Some (Ast.Call (callee, args))) ] -> (
      match List.find_opt (fun (h : Ast.func) -> h.name = callee) helpers with
      | Some h
        when List.length h.params = List.length args
             && List.for_all2
                  (fun (p : Ast.param) a -> a = Ast.Id p.pname)
                  h.params args ->
          { f with body = h.body }
      | Some _ | None -> f)
  | _ -> f

(* ------------------------------------------------------------------ *)
(* if/else-if chain -> switch normalization                            *)

(* Collect a chain [if (v == c1) b1 else if (v == c2) b2 ... else bd]
   over one scrutinee variable [v] with constant-like comparands. *)
let rec collect_chain scrut acc (s : Ast.stmt) =
  match s with
  | Ast.If (Ast.Binop (Ast.Eq, Ast.Id v, rhs), then_, else_) -> (
      let const_like =
        match rhs with
        | Ast.Int _ | Ast.Scoped _ | Ast.Id _ | Ast.Str _ -> true
        | _ -> false
      in
      let same_scrut = match scrut with None -> true | Some v' -> v = v' in
      if not (const_like && same_scrut) then None
      else
        let acc = (rhs, then_) :: acc in
        match else_ with
        | [] -> Some (v, List.rev acc, [])
        | [ (Ast.If _ as nested) ] -> (
            match collect_chain (Some v) acc nested with
            | Some r -> Some r
            | None -> Some (v, List.rev acc, else_))
        | _ -> Some (v, List.rev acc, else_))
  | Ast.If _ | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ | Ast.Switch _
  | Ast.Return _ | Ast.Break | Ast.Continue | Ast.While _ | Ast.For _ ->
      None

(* A switch arm body must not fall through silently; our chains end in
   return/break in practice, but guard by appending a break when needed. *)
let arm_body body =
  match List.rev body with
  | (Ast.Return _ | Ast.Break) :: _ -> body
  | _ -> body @ [ Ast.Break ]

let rec norm_stmt (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.If (cond, then_, else_) -> (
      match collect_chain None [] s with
      | Some (v, arms, default) when List.length arms >= 2 ->
          Ast.Switch
            ( Ast.Id v,
              List.map
                (fun (rhs, body) ->
                  { Ast.labels = [ rhs ]; body = arm_body (norm_list body) })
                arms,
              norm_list default )
      | _ -> Ast.If (cond, norm_list then_, norm_list else_))
  | Ast.Switch (scrut, arms, default) ->
      Ast.Switch
        ( scrut,
          List.map
            (fun (a : Ast.arm) -> { a with Ast.body = norm_list a.body })
            arms,
          norm_list default )
  | Ast.While (c, body) -> Ast.While (c, norm_list body)
  | Ast.For (i, c, st, body) -> Ast.For (i, c, st, norm_list body)
  | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ | Ast.Return _ | Ast.Break
  | Ast.Continue ->
      s

and norm_list body = List.map norm_stmt body

let normalize_ifchains (f : Ast.func) = { f with Ast.body = norm_list f.body }

(* ------------------------------------------------------------------ *)
(* Flattening and repeat collapsing                                    *)

let lines_of_func f =
  List.map
    (fun (l : Lines.t) ->
      { kind = Lines.kind_name l.kind; tokens = Lines.tokens_of l })
    (Lines.of_func f)

let similar_lines a b =
  a.kind = b.kind
  &&
  let ta = Array.of_list a.tokens and tb = Array.of_list b.tokens in
  Vega_util.Lcs.similarity ~eq:String.equal ta tb >= 0.55

let units_similar u v =
  List.length u = List.length v && List.for_all2 similar_lines u v

let unit_shape unit =
  String.concat "|"
    (List.map (fun l -> Printf.sprintf "%s:%d" l.kind (List.length l.tokens)) unit)

(* Closing braces are structural, not repeatable content: a unit made only
   of them must never collapse (it would unbalance generated functions). *)
let collapsible unit = List.exists (fun l -> l.kind <> "close") unit

(* Greedy: at each position try periods 1..4 (smallest first, so that a
   run of case+return pairs collapses with period 2, not 4) and take the
   longest run of repetitions of a similar unit. *)
let collapse lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let sub i len = Array.to_list (Array.sub arr i len) in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let best = ref None in
    List.iter
      (fun p ->
        if !best = None && !i + (2 * p) <= n then begin
          let unit0 = sub !i p in
          if collapsible unit0 then begin
            let count = ref 1 in
            while
              !i + ((!count + 1) * p) <= n
              && units_similar unit0 (sub (!i + (!count * p)) p)
            do
              incr count
            done;
            if !count >= 2 then best := Some (p, !count)
          end
        end)
      [ 1; 2; 3; 4 ];
    (match !best with
    | Some (p, count) ->
        let instances = List.init count (fun k -> sub (!i + (k * p)) p) in
        out := Repeat instances :: !out;
        i := !i + (count * p)
    | None ->
        out := Single arr.(!i) :: !out;
        incr i)
  done;
  List.rev !out

let run f ~helpers =
  let f = inline_helpers f helpers in
  let f = normalize_ifchains f in
  collapse (lines_of_func f)

let item_head = function
  | Single l -> l
  | Repeat (inst :: _) -> (
      match inst with l :: _ -> l | [] -> invalid_arg "item_head: empty unit")
  | Repeat [] -> invalid_arg "item_head: empty repeat"

let item_lines = function Single l -> [ l ] | Repeat insts -> List.concat insts
