module Catalog = Vega_tdlang.Catalog
module Strutil = Vega_util.Strutil

type prop_kind = Independent | Dependent

type source =
  | Enum_source of string  (** target-side enum (Fixups, Opcodes, ...) *)
  | Llvm_enum_source of string
      (** LLVM-provided enum (ISD::NodeType, DecodeStatus, ...): values
          are shared by every target *)
  | Assign_source of string
  | Decl_presence

type prop = {
  pname : string;
  kind : prop_kind;
  source : source;
  identified_site : string option;
}

type pattern_item =
  | Plit of string
  | Pprop of string
  | Pcompose of { pre : string; prop : string; post : string }
      (** the word is [pre ^ value ^ post], e.g. ARMELFObjectWriter =
          "" ^ Name ^ "ELFObjectWriter" *)
  | Pindex

type target_view = {
  tv_target : string;
  independent : (string * bool) list;
  candidates : (string * (string * string) list) list;
}

type t = {
  props : prop list;
  slot_patterns : ((int * int * int) * pattern_item list) list;
  views : target_view list;
}

type context = {
  vfs : Vega_tdlang.Vfs.t;
  llvm_cat : Catalog.t;
  tgt_cats : (string * Catalog.t) list;
}

let make_context vfs ~targets =
  let llvm_cat = Catalog.build vfs Vega_tdlang.Vfs.llvmdirs in
  let tgt_cats =
    List.map (fun t -> (t, Catalog.build vfs (Vega_tdlang.Vfs.tgtdirs t))) targets
  in
  { vfs; llvm_cat; tgt_cats }

let add_target ctx target =
  if List.mem_assoc target ctx.tgt_cats then ctx
  else
    {
      ctx with
      tgt_cats =
        ctx.tgt_cats
        @ [ (target, Catalog.build ctx.vfs (Vega_tdlang.Vfs.tgtdirs target)) ];
    }

let prop_names t = List.map (fun p -> p.pname) t.props
let find_prop t name = List.find_opt (fun p -> p.pname = name) t.props
let view t target = List.find_opt (fun v -> v.tv_target = target) t.views

let pattern t ~col ~line ~slot = List.assoc_opt (col, line, slot) t.slot_patterns

let candidates_for tv pname =
  Option.value ~default:[] (List.assoc_opt pname tv.candidates)

(* ------------------------------------------------------------------ *)
(* Token classification helpers                                        *)

let is_word tok =
  tok <> ""
  &&
  let c = tok.[0] in
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let keywords =
  [
    "if"; "else"; "switch"; "case"; "default"; "return"; "break"; "continue";
    "for"; "while"; "true"; "false"; "const"; "unsigned"; "int"; "bool";
    "void"; "nullptr"; "static_cast";
  ]

let is_candidate_word tok = is_word tok && not (List.mem tok keywords)

(* ------------------------------------------------------------------ *)
(* Target-independent properties for common code (Alg. 1 lines 8-24)   *)

(* Resolve one common-code token against one target's catalog. [Tgt_hit]
   means the property is specialized under this target's TGTDIRs (cases 1
   and 2 of Algorithm 1); [Llvm_hit] means it is only declared under
   LLVMDIRs (case 3) and thus holds for every target. *)
type ind_hit = Tgt_hit of string | Llvm_hit of string | No_hit

let independent_of_token ctx tgt_cat tok =
  let in_proplist = Catalog.is_prop ctx.llvm_cat tok in
  match Catalog.find_word tgt_cat tok with
  | _ :: _ when in_proplist -> Tgt_hit tok
  | _ -> (
      let hit =
        List.find_opt
          (fun (field, str, _) ->
            Strutil.loose_match tok str && Catalog.is_prop ctx.llvm_cat field)
          (Catalog.assignments tgt_cat)
      in
      match hit with
      | Some (field, _, _) -> Tgt_hit field
      | None -> if in_proplist then Llvm_hit tok else No_hit)

(* Presence test for a specialized independent property against one
   target's TGTDIRs (used for both training and held-out targets). *)
let specialized_present tgt_cat pname =
  Catalog.find_word tgt_cat pname <> []
  || List.exists (fun (f, _, _) -> f = pname) (Catalog.assignments tgt_cat)

(* ------------------------------------------------------------------ *)
(* Target-dependent properties for slot values (Alg. 1 lines 25-40)    *)

(* Resolve one slot word for one target. Returns the property plus the
   matched value (the whole word for enum members; the assignment's RHS
   for partial matches, in which case the word decomposes as
   pre ^ value ^ post). [context] (the interface-function name) breaks
   ties between fields sharing small values: "2" inside getReturnRegister
   resolves to RetReg, not LoadLatency. *)
let dependent_of_word ?(context = "") ctx tgt_cat word =
  match Catalog.enum_of_member tgt_cat word with
  | Some (enum_name, path) ->
      (* correlate a TGTDIRs enum with its LLVM counterpart through the
         first member's reference (Fixups -> FirstTargetFixupKind ->
         MCFixupKind), as in Sec. 2.1.2 *)
      let correlated =
        List.find_map
          (fun (p, (e : Vega_tdlang.Td_ast.enum_decl)) ->
            if p = path && e.enum_name = enum_name then
              match e.members with
              | (_, Vega_tdlang.Td_ast.Init_ref r) :: _ -> (
                  match Catalog.enum_of_member ctx.llvm_cat r with
                  | Some (llvm_enum, llvm_path) -> Some (llvm_enum, llvm_path)
                  | None -> None)
              | _ -> None
            else None)
          (Catalog.enum_decls tgt_cat)
      in
      let pname, ident =
        match correlated with
        | Some (llvm_enum, llvm_path) -> (llvm_enum, Some llvm_path)
        | None ->
            if Catalog.is_prop ctx.llvm_cat enum_name then
              (enum_name, Catalog.global_path ctx.llvm_cat enum_name)
            else (enum_name, None)
      in
      Some
        ( {
            pname;
            kind = Dependent;
            source = Enum_source enum_name;
            identified_site = ident;
          },
          word )
  | None -> (
      (* assignment partial match, requiring the RHS to embed in the word
         so that the word decomposes as pre ^ value ^ post; numeric words
         (register numbers, latencies) must match exactly — "1" inside
         "12" is not a match *)
      let numeric =
        word <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') word
      in
      (* among matching assignments prefer the longest RHS, so that a
         target-name value does not shadow a longer embedded value *)
      let score field str =
        (* longer matched values first, then affinity between the field
           name and the interface-function name *)
        (10.0 *. float_of_int (String.length str))
        +. Strutil.common_token_score field context
      in
      let hit =
        List.fold_left
          (fun acc (field, str, path) ->
            let matches =
              str <> ""
              && (if numeric then str = word
                  else
                    str = word
                    || (String.length str >= 2
                       && Strutil.contains_sub ~sub:str word))
              && Catalog.is_prop ctx.llvm_cat field
            in
            if not matches then acc
            else
              match acc with
              | Some (pf, ps, _) when score pf ps >= score field str -> acc
              | _ -> Some (field, str, path))
          None (Catalog.assignments tgt_cat)
      in
      match hit with
      | Some (field, str, _) ->
          Some
            ( {
                pname = field;
                kind = Dependent;
                source = Assign_source field;
                identified_site = Catalog.global_path ctx.llvm_cat field;
              },
              str )
      | None -> (
          (* LLVM-provided enum member (ISD node, DecodeStatus...): a
             shared vocabulary every target selects over *)
          match Catalog.enum_of_member ctx.llvm_cat word with
          | Some (enum_name, path) ->
              Some
                ( {
                    pname = enum_name;
                    kind = Dependent;
                    source = Llvm_enum_source enum_name;
                    identified_site = Some path;
                  },
                  word )
          | None -> None))

(* Candidate values of a dependent property for one target, in file
   order. *)
let candidates_of_prop ctx tgt_cat prop =
  match prop.source with
  | Enum_source enum_name ->
      let path = Option.value ~default:"" (Catalog.enum_path tgt_cat enum_name) in
      (* The correlated enum has the same NAME across targets (Fixups,
         Opcodes, VariantKind): look it up in this target's catalog. *)
      List.filter_map
        (fun m ->
          if Strutil.starts_with ~prefix:"Last" m || Strutil.starts_with ~prefix:"First" m
          then None
          else Some (m, path))
        (Catalog.members_of_enum tgt_cat enum_name)
  | Llvm_enum_source enum_name ->
      let path = Option.value ~default:"" (Catalog.enum_path ctx.llvm_cat enum_name) in
      List.map (fun m -> (m, path)) (Catalog.members_of_enum ctx.llvm_cat enum_name)
  | Assign_source field ->
      List.map (fun (v, p) -> (v, p)) (Catalog.assignments_of tgt_cat field)
  | Decl_presence -> []

(* ------------------------------------------------------------------ *)
(* Analysis driver                                                     *)

let max_props = 12

(* All common tokens of a template (Tok items across columns). *)
let common_tokens (tpl : Template.t) =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let add tok =
    if is_candidate_word tok && not (Hashtbl.mem seen tok) then begin
      Hashtbl.add seen tok ();
      out := tok :: !out
    end
  in
  List.iter
    (function Template.Tok t -> add t | Template.Slot _ -> ())
    tpl.signature.items;
  List.iter
    (fun (col : Template.column) ->
      List.iter
        (fun st ->
          List.iter
            (function Template.Tok t -> add t | Template.Slot _ -> ())
            st.Template.items)
        col.unit)
    tpl.columns;
  List.rev !out

(* Slot contents of an instance line j of column c for a target. *)
let slot_values_of st (line : Preprocess.cline) =
  Template.match_instance st line.Preprocess.tokens

let majority lst =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun x ->
      Hashtbl.replace counts x
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts x)))
    lst;
  Hashtbl.fold (fun x c best ->
      match best with
      | Some (_, bc) when bc >= c -> best
      | _ -> Some (x, c))
    counts None
  |> Option.map fst

let analyze ctx (tpl : Template.t) =
  let props : (string, prop) Hashtbl.t = Hashtbl.create 16 in
  let prop_order = ref [] in
  (* A name may be claimed by both kinds (VariantKind is an independent
     presence property AND the enum supplying variant values); the
     dependent side gets a "...Value" alias. *)
  let rec register p =
    match Hashtbl.find_opt props p.pname with
    | Some existing when existing.kind = p.kind -> p.pname
    | Some _ -> register { p with pname = p.pname ^ "Value" }
    | None ->
        Hashtbl.add props p.pname p;
        prop_order := p.pname :: !prop_order;
        p.pname
  in
  (* --- independent properties from common tokens --- *)
  (* A property specialized under any target's TGTDIRs is per-target
     (VariantKind: true for ARM, false for MIPS); one declared only under
     LLVMDIRs holds everywhere (MCSymbolRefExpr). *)
  let specialized : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  let tgt_hits : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tok ->
      List.iter
        (fun (tname, tgt_cat) ->
          match independent_of_token ctx tgt_cat tok with
          | Tgt_hit pname ->
              let _ =
                register
                  {
                    pname;
                    kind = Independent;
                    source = Decl_presence;
                    identified_site = Catalog.global_path ctx.llvm_cat pname;
                  }
              in
              Hashtbl.replace specialized pname true;
              Hashtbl.replace tgt_hits (pname, tname) ()
          | Llvm_hit pname ->
              let _ =
                register
                  {
                    pname;
                    kind = Independent;
                    source = Decl_presence;
                    identified_site = Catalog.global_path ctx.llvm_cat pname;
                  }
              in
              if not (Hashtbl.mem specialized pname) then
                Hashtbl.replace specialized pname false
          | No_hit -> ())
        ctx.tgt_cats)
    (common_tokens tpl);
  let independent_presence pname tname tgt_cat =
    if Option.value ~default:false (Hashtbl.find_opt specialized pname) then
      Hashtbl.mem tgt_hits (pname, tname) || specialized_present tgt_cat pname
    else true
  in
  (* --- dependent properties from slots --- *)
  (* the signature participates as pseudo-column -1 *)
  let indexed_columns =
    (-1, Template.signature_column tpl)
    :: List.mapi (fun i c -> (i, c)) tpl.columns
  in
  let slot_patterns = ref [] in
  List.iter
    (fun (ci, (col : Template.column)) ->
      List.iteri
        (fun li st ->
          if st.Template.nslots > 0 then begin
            (* per slot: every instance's words plus its index *)
            let per_slot : (string * int * string list) list array =
              Array.make st.Template.nslots []
            in
            List.iter
              (fun (tname, insts) ->
                List.iteri
                  (fun inst_idx inst ->
                    let line = List.nth inst li in
                    match slot_values_of st line with
                    | Some values ->
                        List.iteri
                          (fun si toks ->
                            per_slot.(si) <-
                              (tname, inst_idx, toks) :: per_slot.(si))
                          values
                    | None -> ())
                  insts)
              col.Template.occurrences;
            let is_numeric w =
              w <> ""
              && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') w
            in
            let is_quoted w =
              String.length w >= 2 && w.[0] = '"' && w.[String.length w - 1] = '"'
            in
            let match_key w =
              if is_quoted w then String.sub w 1 (String.length w - 2) else w
            in
            let item_of tname inst_idx w : pattern_item =
              ignore inst_idx;
              let tgt_cat = List.assoc tname ctx.tgt_cats in
              if
                not
                  (is_candidate_word w || is_numeric w
                  || (is_quoted w && match_key w <> ""))
              then Plit w
              else
                match
                  dependent_of_word ~context:tpl.Template.fname ctx tgt_cat
                    (match_key w)
                with
                | Some (p, value) ->
                    let pname = register p in
                    if value = w then Pprop pname
                    else begin
                      let rec find i =
                        if i + String.length value > String.length w then 0
                        else if String.sub w i (String.length value) = value
                        then i
                        else find (i + 1)
                      in
                      let i = find 0 in
                      Pcompose
                        {
                          pre = String.sub w 0 i;
                          prop = pname;
                          post =
                            String.sub w
                              (i + String.length value)
                              (String.length w - i - String.length value);
                        }
                    end
                | None -> Plit w
            in
            Array.iteri
              (fun si instances ->
                match instances with
                | [] -> ()
                | _ ->
                    let single_word =
                      List.for_all (fun (_, _, toks) -> List.length toks = 1)
                        instances
                    in
                    if single_word && col.Template.repeated then begin
                      (* hypothesis scoring: the instance index, one
                         property, or a literal — whichever explains the
                         most instances wins (getArgRegister: IDX explains
                         every case label, ArgRegs every return value) *)
                      let n = List.length instances in
                      let idx_count =
                        List.length
                          (List.filter
                             (fun (_, idx, toks) ->
                               toks = [ string_of_int idx ])
                             instances)
                      in
                      let tally = Hashtbl.create 8 in
                      List.iter
                        (fun (tname, inst_idx, toks) ->
                          let w = List.hd toks in
                          match item_of tname inst_idx w with
                          | (Pprop _ | Pcompose _ | Plit _) as item ->
                              let key =
                                match item with
                                | Pprop p -> "P:" ^ p
                                | Pcompose { pre; prop; post } ->
                                    "C:" ^ pre ^ "|" ^ prop ^ "|" ^ post
                                | Plit l -> "L:" ^ l
                                | Pindex -> "I"
                              in
                              let prev =
                                match Hashtbl.find_opt tally key with
                                | Some (c, _) -> c
                                | None -> 0
                              in
                              Hashtbl.replace tally key (prev + 1, item)
                          | Pindex -> ())
                        instances;
                      let best_prop =
                        Hashtbl.fold
                          (fun key (c, item) acc ->
                            if String.length key > 0 && key.[0] = 'L' then acc
                            else
                              match acc with
                              | Some (bc, _) when bc >= c -> acc
                              | _ -> Some (c, item))
                          tally None
                      in
                      let best_any =
                        Hashtbl.fold
                          (fun _ (c, item) acc ->
                            match acc with
                            | Some (bc, _) when bc >= c -> acc
                            | _ -> Some (c, item))
                          tally None
                      in
                      let chosen =
                        match best_prop with
                        | Some (c, item) when c >= idx_count && c > n / 3 ->
                            Some [ item ]
                        | _ when idx_count > n / 2 -> Some [ Pindex ]
                        | _ -> (
                            match best_any with
                            | Some (_, item) -> Some [ item ]
                            | None -> None)
                      in
                      match chosen with
                      | Some pat ->
                          slot_patterns := ((ci, li, si), pat) :: !slot_patterns
                      | None -> ()
                    end
                    else begin
                      (* multi-word (qualified) slots: per-instance
                         patterns, plurality vote *)
                      let pats =
                        List.map
                          (fun (tname, inst_idx, toks) ->
                            List.map
                              (fun w ->
                                if
                                  col.Template.repeated
                                  && w = string_of_int inst_idx
                                then Pindex
                                else item_of tname inst_idx w)
                              toks)
                          instances
                      in
                      match majority pats with
                      | Some pat ->
                          slot_patterns := ((ci, li, si), pat) :: !slot_patterns
                      | None -> ()
                    end)
              per_slot
          end)
        col.Template.unit)
    indexed_columns;
  let ordered_props =
    List.filteri (fun i _ -> i < max_props) (List.rev !prop_order)
    |> List.map (Hashtbl.find props)
  in
  (* --- per-target views --- *)
  let view_of tname tgt_cat =
    {
      tv_target = tname;
      independent =
        List.filter_map
          (fun p ->
            if p.kind = Independent then
              Some (p.pname, independent_presence p.pname tname tgt_cat)
            else None)
          ordered_props;
      candidates =
        List.filter_map
          (fun p ->
            if p.kind = Dependent then Some (p.pname, candidates_of_prop ctx tgt_cat p)
            else None)
          ordered_props;
    }
  in
  {
    props = ordered_props;
    slot_patterns = List.rev !slot_patterns;
    views = List.map (fun (tname, cat) -> view_of tname cat) ctx.tgt_cats;
  }

(* Specialized-property bookkeeping must survive into generation: a
   property is treated as per-target when ANY training view disagrees on
   it; otherwise it holds everywhere. *)
let prop_specialized analysis pname =
  let vals =
    List.filter_map (fun v -> List.assoc_opt pname v.independent) analysis.views
  in
  List.exists not vals

let view_for_new_target ctx (_tpl : Template.t) analysis target =
  let tgt_cat =
    match List.assoc_opt target ctx.tgt_cats with
    | Some c -> c
    | None -> Catalog.build ctx.vfs (Vega_tdlang.Vfs.tgtdirs target)
  in
  {
    tv_target = target;
    independent =
      List.filter_map
        (fun p ->
          if p.kind = Independent then
            let present =
              if prop_specialized analysis p.pname then
                specialized_present tgt_cat p.pname
              else true
            in
            Some (p.pname, present)
          else None)
        analysis.props;
    candidates =
      List.filter_map
        (fun p ->
          if p.kind = Dependent then Some (p.pname, candidates_of_prop ctx tgt_cat p)
          else None)
        analysis.props;
  }
