(** Pre-processing of corpus functions (Sec. 3.1 of the paper):

    - recursive inlining of local helper callees (e.g. ARM's
      GetRelocTypeInner into getRelocType), keeping interface calls;
    - normalization of if/else-if chains over one scrutinee into [switch];
    - flattening into statement lines, and collapsing runs of repeated
      statement units (the many [case X: return Y;] arms) into a single
      repeated unit with recorded instances, which is what makes one
      statement template (the paper's T_5) stand for all of a target's
      case arms. *)

type cline = { kind : string; tokens : string list }
(** One statement line: kind from {!Vega_srclang.Lines.kind_name} plus
    canonical token spellings. *)

type citem =
  | Single of cline
  | Repeat of cline list list
      (** instances of a repeated unit; every instance has the same length
          (the unit length) and shape *)

val inline_helpers : Vega_srclang.Ast.func -> Vega_srclang.Ast.func list -> Vega_srclang.Ast.func
(** Inline tail-call helpers: a body of the exact form
    [return Helper(p1, .., pn);] where [Helper] is among the given local
    functions with matching parameters is replaced by the helper's body. *)

val normalize_ifchains : Vega_srclang.Ast.func -> Vega_srclang.Ast.func
(** Rewrite if/else-if chains testing [scrutinee == constant] (chain
    length >= 2) into an equivalent [switch]. *)

val lines_of_func : Vega_srclang.Ast.func -> cline list
(** Canonical statement lines after normalization. *)

val collapse : cline list -> citem list
(** Collapse maximal runs (>= 2 repetitions) of similar statement units of
    period 1..4 into [Repeat] items. *)

val run : Vega_srclang.Ast.func -> helpers:Vega_srclang.Ast.func list -> citem list
(** Full pipeline: inline, normalize, flatten, collapse. *)

val item_head : citem -> cline
(** Representative first line of an item. *)

val item_lines : citem -> cline list
(** All lines of an item, instances concatenated. *)

val unit_shape : cline list -> string
(** Shape key of a unit (kinds + token counts); used by tests. *)

val similar_lines : cline -> cline -> bool
(** Same kind and token-LCS similarity at least 0.5 — the repeat-unit
    shape equivalence. *)
