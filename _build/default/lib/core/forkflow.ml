module Ast = Vega_srclang.Ast
module P = Vega_target.Profile
module Strutil = Vega_util.Strutil

let fork_source = "Mips"

(* The unmodified fork of Sec. 4.2: only the class-prefix rename needed
   to drop the code into the new backend tree. ISA-specific enum members,
   mnemonic strings and numeric values all survive verbatim (and are
   wrong for the new target). *)
let rename ~(src : P.t) ~(dst : P.t) s =
  if s = src.P.name then dst.P.name
  else if
    String.length s > String.length src.P.name
    && String.sub s 0 (String.length src.P.name) = src.P.name
    && s.[String.length src.P.name] >= 'A'
    && s.[String.length src.P.name] <= 'Z'
  then
    (* class-like identifier: MipsELFObjectWriter -> RISCVELFObjectWriter *)
    dst.P.name ^ String.sub s (String.length src.P.name)
        (String.length s - String.length src.P.name)
  else s

let rec rename_expr ~src ~dst (e : Ast.expr) : Ast.expr =
  let r = rename ~src ~dst in
  let re = rename_expr ~src ~dst in
  match e with
  | Ast.Int _ | Ast.Chr _ | Ast.Bool _ | Ast.Nullptr -> e
  | Ast.Str s -> Ast.Str (r s)
  | Ast.Id x -> Ast.Id (r x)
  | Ast.Scoped parts -> Ast.Scoped (List.map r parts)
  | Ast.Call (f, args) -> Ast.Call (r f, List.map re args)
  | Ast.Method (recv, m, args) -> Ast.Method (re recv, m, List.map re args)
  | Ast.Member (recv, f) -> Ast.Member (re recv, f)
  | Ast.Index (recv, i) -> Ast.Index (re recv, re i)
  | Ast.Unop (op, a) -> Ast.Unop (op, re a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, re a, re b)
  | Ast.Ternary (c, t, f) -> Ast.Ternary (re c, re t, re f)
  | Ast.Cast (ty, a) -> Ast.Cast (r ty, re a)

let rec rename_stmt ~src ~dst (s : Ast.stmt) : Ast.stmt =
  let re = rename_expr ~src ~dst in
  let rl = List.map (rename_stmt ~src ~dst) in
  match s with
  | Ast.Decl (ty, name, init) ->
      Ast.Decl (rename ~src ~dst ty, name, Option.map re init)
  | Ast.Assign (op, lhs, rhs) -> Ast.Assign (op, re lhs, re rhs)
  | Ast.Expr e -> Ast.Expr (re e)
  | Ast.If (c, t, e) -> Ast.If (re c, rl t, rl e)
  | Ast.Switch (scrut, arms, default) ->
      Ast.Switch
        ( re scrut,
          List.map
            (fun (a : Ast.arm) ->
              { Ast.labels = List.map re a.labels; body = rl a.body })
            arms,
          rl default )
  | Ast.Return e -> Ast.Return (Option.map re e)
  | Ast.Break | Ast.Continue -> s
  | Ast.While (c, body) -> Ast.While (re c, rl body)
  | Ast.For (i, c, st, body) ->
      Ast.For
        ( Option.map (rename_stmt ~src ~dst) i,
          Option.map re c,
          Option.map (rename_stmt ~src ~dst) st,
          rl body )

let fork_function ~src ~dst (f : Ast.func) =
  {
    Ast.ret_type = rename ~src ~dst f.ret_type;
    cls = Option.map (rename ~src ~dst) f.cls;
    name = f.name;
    params =
      List.map
        (fun (p : Ast.param) -> { p with Ast.ptype = rename ~src ~dst p.ptype })
        f.params;
    body = List.map (rename_stmt ~src ~dst) f.body;
  }

let fork_backend ~dst =
  let src = Vega_target.Registry.find_exn fork_source in
  List.filter_map
    (fun spec ->
      match Vega_corpus.Corpus.reference_inlined spec src with
      | Some f -> Some (spec, fork_function ~src ~dst f)
      | None -> None)
    Vega_corpus.Corpus.all_specs
