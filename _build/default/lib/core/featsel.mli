(** Feature selection (Sec. 3.2.2, Algorithm 1).

    For one function template, identify:
    - Boolean {e target-independent} properties behind the common-code
      tokens (declared in LLVMDIRs, possibly specialized under TGTDIRs —
      e.g. VariantKind; or linked by partial string matching — e.g.
      IsPCRel -> OperandType via "OPERAND_PCREL");
    - string {e target-dependent} properties behind the slot values
      (enum membership — e.g. fixup_arm_movt_hi16 in Fixups, correlated
      with MCFixupKind via FirstTargetFixupKind — or assignment partial
      match — e.g. "ARM" in [Name = "ARM"]).

    Every query goes through {!Vega_tdlang.Catalog} over the rendered
    description files; profiles are never consulted. *)

type prop_kind = Independent | Dependent

type source =
  | Enum_source of string
      (** property values are members of this enum (per-target instance) *)
  | Llvm_enum_source of string
      (** values come from an LLVM-provided enum (ISD nodes,
          DecodeStatus): a shared vocabulary every target selects over *)
  | Assign_source of string
      (** property values are assigned to this record field in .td files *)
  | Decl_presence  (** independent: declared/updated as a type or global *)

type prop = {
  pname : string;
  kind : prop_kind;
  source : source;
  identified_site : string option;  (** declaration under LLVMDIRs *)
}

(** How one slot's content is built from property values. *)
type pattern_item =
  | Plit of string  (** literal token, e.g. ["::"] *)
  | Pprop of string  (** value of the named dependent property *)
  | Pcompose of { pre : string; prop : string; post : string }
      (** the word is [pre ^ value ^ post], e.g. ARMELFObjectWriter is
          "" ^ Name ^ "ELFObjectWriter" *)
  | Pindex  (** the instance index within a repeated column *)

type target_view = {
  tv_target : string;
  independent : (string * bool) list;  (** prop -> present for this target *)
  candidates : (string * (string * string) list) list;
      (** dependent prop -> [(value, update_site)] in file order *)
}

type t = {
  props : prop list;
  slot_patterns : ((int * int * int) * pattern_item list) list;
      (** (column index, unit line, slot) -> majority pattern *)
  views : target_view list;
}

val prop_names : t -> string list
val find_prop : t -> string -> prop option
val view : t -> string -> target_view option
val pattern : t -> col:int -> line:int -> slot:int -> pattern_item list option

val candidates_for : target_view -> string -> (string * string) list
(** Candidate [(value, site)] list of a dependent property for a target;
    empty when the property has no values there. *)

type context = {
  vfs : Vega_tdlang.Vfs.t;
  llvm_cat : Vega_tdlang.Catalog.t;
  tgt_cats : (string * Vega_tdlang.Catalog.t) list;  (** per-target TGTDIRs *)
}

val make_context : Vega_tdlang.Vfs.t -> targets:string list -> context
(** Build the LLVMDIRs catalog and one TGTDIRs catalog per target. *)

val add_target : context -> string -> context
(** Extend a context with a new (e.g. held-out) target's catalog. *)

val analyze : context -> Template.t -> t
(** Run Algorithm 1 for a function template over the context's training
    targets. *)

val view_for_new_target : context -> Template.t -> t -> string -> target_view
(** Target-Specific stage (Sec. 3.4): compute the view of a target that
    did not participate in [analyze], from its description files only. *)
