module Strutil = Vega_util.Strutil

type inst_values = { iv_index : int; iv_values : (string * string) list }

let max_instances = 24

(* ------------------------------------------------------------------ *)
(* Pattern application                                                  *)

(* Walk a slot's pattern against its concrete word list, extracting
   property values. Pattern and words are positional; surplus on either
   side is ignored. *)
let values_of_slot pattern words =
  let rec go pat ws acc =
    match (pat, ws) with
    | [], _ | _, [] -> acc
    | Featsel.Plit _ :: pr, _ :: wr -> go pr wr acc
    | Featsel.Pindex :: pr, _ :: wr -> go pr wr acc
    | Featsel.Pprop p :: pr, w :: wr -> go pr wr ((p, w) :: acc)
    | Featsel.Pcompose { pre; prop; post } :: pr, w :: wr ->
        let wl = String.length w
        and prel = String.length pre
        and postl = String.length post in
        let acc =
          if
            wl >= prel + postl
            && String.sub w 0 prel = pre
            && String.sub w (wl - postl) postl = post
          then (prop, String.sub w prel (wl - prel - postl)) :: acc
          else acc
        in
        go pr wr acc
  in
  List.rev (go pattern words [])

let training_values_col analysis (column : Template.column) ~col inst idx =
  let values = ref [] in
  List.iteri
    (fun li st ->
      if st.Template.nslots > 0 then
        let line = List.nth inst li in
        match Template.match_instance st line.Preprocess.tokens with
        | Some slots ->
            List.iteri
              (fun si words ->
                match Featsel.pattern analysis ~col ~line:li ~slot:si with
                | Some pat ->
                    List.iter
                      (fun (p, v) ->
                        if not (List.mem_assoc p !values) then
                          values := (p, v) :: !values)
                      (values_of_slot pat words)
                | None -> ())
              slots
        | None -> ())
    column.Template.unit;
  { iv_index = idx; iv_values = List.rev !values }

let training_values analysis (tpl : Template.t) ~col inst idx =
  let column =
    if col = -1 then Template.signature_column tpl else List.nth tpl.columns col
  in
  training_values_col analysis column ~col inst idx

(* ------------------------------------------------------------------ *)
(* Driving property                                                     *)

let pattern_props pat =
  List.filter_map
    (function
      | Featsel.Pprop p -> Some p
      | Featsel.Pcompose { prop; _ } -> Some prop
      | Featsel.Plit _ | Featsel.Pindex -> None)
    pat

(* slots of the column in (line, slot) order with their patterns *)
let column_patterns analysis (column : Template.column) ~col =
  List.concat
    (List.mapi
       (fun li st ->
         List.filter_map
           (fun si ->
             match Featsel.pattern analysis ~col ~line:li ~slot:si with
             | Some pat -> Some (li, si, pat)
             | None -> None)
           (List.init st.Template.nslots Fun.id))
       column.Template.unit)

(* The driving property of a repeated column is the one whose values vary
   across instances within a training target (MCFixupKind varies arm by
   arm; the qualifier Name is constant and must not drive). Falls back to
   the first referenced property. *)
let driving_prop analysis ~col (column : Template.column) =
  let pats = column_patterns analysis column ~col in
  let props =
    List.concat_map (fun (_, _, pat) -> pattern_props pat) pats
    |> List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc) []
    |> List.rev
  in
  let varies p =
    List.exists
      (fun (_, insts) ->
        let values =
          List.filteri (fun i _ -> i < 6) insts
          |> List.mapi (fun idx inst ->
                 List.assoc_opt p
                   (training_values_col analysis column ~col inst idx).iv_values)
          |> List.filter_map Fun.id
        in
        List.length (List.sort_uniq compare values) >= 2)
      column.Template.occurrences
  in
  match List.find_opt varies props with
  | Some p -> Some p
  | None -> ( match props with p :: _ -> Some p | [] -> None)

(* Statement presence for a new target (the paper's has(S_k), Sec. 2.4:
   "T_2 appears for ARM due to a definition of VariantKind within ARM's
   TGTDIRs"): find independent properties whose truth values coincide
   exactly with the column's presence across training targets; the
   statement is present for a new target iff all such correlates hold.
   Without a perfect correlate, majority presence decides. *)
let presence_estimate (analysis : Featsel.t) (tpl : Template.t)
    (column : Template.column) (view : Featsel.target_view) =
  (* only the targets implementing this interface function vote; the
     others do not have the function at all *)
  let training = tpl.Template.targets in
  let group_views =
    List.filter
      (fun v -> List.mem v.Featsel.tv_target training)
      analysis.Featsel.views
  in
  let present t = List.mem_assoc t column.Template.occurrences in
  let correlates =
    List.filter_map
      (fun (p : Featsel.prop) ->
        if p.Featsel.kind <> Featsel.Independent then None
        else if
          group_views <> []
          && List.for_all
               (fun v ->
                 match List.assoc_opt p.Featsel.pname v.Featsel.independent with
                 | Some value -> value = present v.Featsel.tv_target
                 | None -> false)
               group_views
        then Some p.Featsel.pname
        else None)
      analysis.Featsel.props
  in
  match correlates with
  | _ :: _ ->
      List.for_all
        (fun pname ->
          Option.value ~default:false
            (List.assoc_opt pname view.Featsel.independent))
        correlates
  | [] ->
      let n_present = List.length (List.filter present training) in
      2 * n_present >= List.length training

(* ------------------------------------------------------------------ *)
(* Hints                                                                *)

type hints = {
  words : (int * int * int, (string, float) Hashtbl.t) Hashtbl.t;
      (** per-slot word frequencies of training values *)
  pairs : (int * string, (string * string, int) Hashtbl.t) Hashtbl.t;
      (** (column, property) -> (driving value, property value) counts;
          the cross-target value pairing (ISD::ADD with ADDrr) the paper's
          model learns through attention *)
}

let hint_words_of value =
  List.map Strutil.lowercase (Strutil.camel_words value)

let collect_hints (analysis : Featsel.t) (tpl : Template.t) =
  let h : (int * int * int, (string, float) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let indexed =
    (-1, Template.signature_column tpl)
    :: List.mapi (fun i c -> (i, c)) tpl.Template.columns
  in
  List.iter
    (fun (ci, (col : Template.column)) ->
      List.iteri
        (fun li st ->
          if st.Template.nslots > 0 then
            List.iter
              (fun (_tname, insts) ->
                List.iter
                  (fun inst ->
                    let line = List.nth inst li in
                    match Template.match_instance st line.Preprocess.tokens with
                    | Some slots ->
                        List.iteri
                          (fun si words ->
                            let key = (ci, li, si) in
                            let tbl =
                              match Hashtbl.find_opt h key with
                              | Some t -> t
                              | None ->
                                  let t = Hashtbl.create 8 in
                                  Hashtbl.add h key t;
                                  t
                            in
                            List.iter
                              (fun w ->
                                List.iter
                                  (fun hw ->
                                    Hashtbl.replace tbl hw
                                      (1.0
                                      +. Option.value ~default:0.0
                                           (Hashtbl.find_opt tbl hw)))
                                  (hint_words_of w))
                              words)
                          slots
                    | None -> ())
                  insts)
              col.Template.occurrences)
        col.Template.unit)
    indexed;
  (* normalize counts to frequencies *)
  Hashtbl.iter
    (fun _ tbl ->
      let total = Hashtbl.fold (fun _ c acc -> acc +. c) tbl 0.0 in
      if total > 0.0 then
        Hashtbl.iter (fun w c -> Hashtbl.replace tbl w (c /. total)) tbl)
    h;
  (* value pairs: driving value vs every other property value, pooled
     over all training instances of each column *)
  let pairs = Hashtbl.create 32 in
  List.iter
    (fun (ci, (col : Template.column)) ->
      match driving_prop analysis ~col:ci col with
      | None -> ()
      | Some d ->
          List.iter
            (fun (_tname, insts) ->
              List.iteri
                (fun idx inst ->
                  let iv = training_values_col analysis col ~col:ci inst idx in
                  match List.assoc_opt d iv.iv_values with
                  | None -> ()
                  | Some dval ->
                      List.iter
                        (fun (p, v) ->
                          if p <> d then begin
                            let tbl =
                              match Hashtbl.find_opt pairs (ci, p) with
                              | Some t -> t
                              | None ->
                                  let t = Hashtbl.create 16 in
                                  Hashtbl.add pairs (ci, p) t;
                                  t
                            in
                            Hashtbl.replace tbl (dval, v)
                              (1
                              + Option.value ~default:0
                                  (Hashtbl.find_opt tbl (dval, v)))
                          end)
                        iv.iv_values)
                insts)
            col.Template.occurrences)
    indexed;
  { words = h; pairs }

let score_candidate hints ~col ~line ~slot ~driving candidate =
  let sim =
    match driving with
    | Some d ->
        let s = 2.0 *. Strutil.common_token_score candidate d in
        (* whole-string embedding (ADD inside ADDrr) is the strongest cue *)
        let lc = Strutil.lowercase candidate and ld = Strutil.lowercase d in
        if
          String.length ld >= 3
          && (Strutil.contains_sub ~sub:ld lc || Strutil.contains_sub ~sub:lc ld)
        then s +. 1.5
        else s
    | None -> 0.0
  in
  let hint_bonus =
    match Hashtbl.find_opt hints.words (col, line, slot) with
    | Some tbl ->
        List.fold_left
          (fun acc w -> acc +. Option.value ~default:0.0 (Hashtbl.find_opt tbl w))
          0.0
          (hint_words_of candidate)
    | None -> 0.0
  in
  sim +. hint_bonus

(* best remembered pairing of a driving value for one property *)
let paired_value hints ~col pname driving =
  match Hashtbl.find_opt hints.pairs (col, pname) with
  | None -> None
  | Some tbl ->
      Hashtbl.fold
        (fun (d, v) count best ->
          if d <> driving then best
          else
            match best with
            | Some (_, bc) when bc >= count -> best
            | _ -> Some (v, count))
        tbl None
      |> Option.map fst

(* ------------------------------------------------------------------ *)
(* Driving property and enumeration                                    *)

let ordered_driving analysis (tpl : Template.t) ~col column =
  match driving_prop analysis ~col column with
  | None -> false
  | Some d ->
      List.for_all
        (fun (tname, insts) ->
          match Featsel.view analysis tname with
          | None -> true
          | Some tv ->
              let cands = List.map fst (Featsel.candidates_for tv d) in
              let values =
                List.mapi
                  (fun idx inst ->
                    List.assoc_opt d
                      (training_values analysis tpl ~col inst idx).iv_values)
                  insts
              in
              List.length values <= List.length cands
              && List.for_all2
                   (fun v c -> match v with None -> false | Some v -> v = c)
                   values
                   (List.filteri
                      (fun i _ -> i < List.length values)
                      cands))
        column.Template.occurrences

let resolve_prop hints tv ~col pats ~driving pname =
  (* candidate list for pname, scored at the first slot referencing it *)
  let cands = Featsel.candidates_for tv pname in
  match cands with
  | [] -> None
  | _ -> (
      (* a remembered cross-target pairing beats similarity scoring *)
      match
        Option.bind driving (fun d ->
            match paired_value hints ~col pname d with
            | Some v when List.mem_assoc v cands -> Some v
            | _ -> None)
      with
      | Some v -> Some v
      | None ->
      let li, si =
        match
          List.find_opt (fun (_, _, pat) -> List.mem pname (pattern_props pat)) pats
        with
        | Some (li, si, _) -> (li, si)
        | None -> (0, 0)
      in
      let best =
        List.fold_left
          (fun acc (v, _) ->
            let s = score_candidate hints ~col ~line:li ~slot:si ~driving v in
            match acc with
            | Some (_, bs) when bs >= s -> acc
            | _ -> Some (v, s))
          None cands
      in
      Option.map fst best)

let enumerate_instances analysis (tpl : Template.t) hints tv ~col column =
  let pats = column_patterns analysis column ~col in
  let props =
    List.sort_uniq compare (List.concat_map (fun (_, _, p) -> pattern_props p) pats)
  in
  if props = [] then
    if not column.Template.repeated then [ { iv_index = 0; iv_values = [] } ]
    else begin
      (* no property drives this repeated column (e.g. the indexed
         operand-field blocks of encodeInstruction): keep the training
         median number of instances, distinguished by index alone *)
      let counts =
        List.map (fun (_, insts) -> List.length insts) column.Template.occurrences
        |> List.sort compare
      in
      let m = match counts with [] -> 1 | l -> List.nth l (List.length l / 2) in
      List.init (min m max_instances) (fun i -> { iv_index = i; iv_values = [] })
    end
  else if not column.Template.repeated then
    let driving = driving_prop analysis ~col column in
    let driving_value =
      Option.bind driving (fun d -> resolve_prop hints tv ~col pats ~driving:None d)
    in
    let values =
      List.filter_map
        (fun p ->
          let v =
            if Some p = driving then driving_value
            else resolve_prop hints tv ~col pats ~driving:driving_value p
          in
          Option.map (fun v -> (p, v)) v)
        props
    in
    [ { iv_index = 0; iv_values = values } ]
  else
    match driving_prop analysis ~col column with
    | None -> [ { iv_index = 0; iv_values = [] } ]
    | Some d ->
        let cands = Featsel.candidates_for tv d in
        let all = List.map fst cands in
        let pats = column_patterns analysis column ~col in
        let d_li, d_si =
          match
            List.find_opt (fun (_, _, pat) -> List.mem d (pattern_props pat)) pats
          with
          | Some (li, si, _) -> (li, si)
          | None -> (0, 0)
        in
        (* Unordered drivers (e.g. latency switches listing only the
           interesting opcodes) do not enumerate the whole candidate set:
           cap at the median training arm count, preferring candidates
           that look like the training values. *)
        let ordered = ordered_driving analysis tpl ~col column in
        let training_counts =
          List.concat_map
            (fun (_, insts) -> [ List.length insts ])
            column.Template.occurrences
          |> List.sort compare
        in
        let median =
          match training_counts with
          | [] -> List.length all
          | l -> List.nth l (List.length l / 2)
        in
        let cands =
          if ordered || List.length all <= median then all
          else
            let scored =
              List.map
                (fun c ->
                  (c, score_candidate hints ~col ~line:d_li ~slot:d_si ~driving:None c))
                all
            in
            let sorted =
              List.stable_sort (fun (_, a) (_, b) -> compare b a) scored
            in
            List.filteri (fun i _ -> i < median) (List.map fst sorted)
        in
        let cands = List.filteri (fun i _ -> i < max_instances) cands in
        List.mapi
          (fun idx c ->
            let values =
              List.filter_map
                (fun p ->
                  if p = d then Some (p, c)
                  else
                    Option.map
                      (fun v -> (p, v))
                      (resolve_prop hints tv ~col pats ~driving:(Some c) p))
                props
            in
            { iv_index = idx; iv_values = values })
          cands
