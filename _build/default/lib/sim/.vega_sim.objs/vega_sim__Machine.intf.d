lib/sim/machine.mli: Vega_backend
