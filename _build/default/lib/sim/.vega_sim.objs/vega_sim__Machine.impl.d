lib/sim/machine.ml: Array Hashtbl List Printf Vega_backend Vega_mc
