(** Parsed shapes of target-description files.

    Three formats feed feature selection:
    - TableGen-like [.td] records ([def ARM : Target { let Name = "ARM"; }]),
    - C-header [.h] declarations (namespaced enums, class names, extern
      globals) — the files like ARMFixupKinds.h the paper mines,
    - X-macro [.def] relocation lists ([ELF_RELOC(R_ARM_NONE, 0x00)]). *)

type value =
  | Vstr of string
  | Vint of int
  | Vid of string
  | Vlist of value list
[@@deriving show { with_path = false }, eq]

type record = {
  rec_name : string;  (** [def <rec_name>] *)
  rec_class : string;  (** parent class after [:] *)
  fields : (string * value) list;  (** [let f = v;] bindings *)
}
[@@deriving show { with_path = false }, eq]

(** Enum member initializer as written; numeric resolution happens in
    {!Catalog}. *)
type member_init = Init_none | Init_int of int | Init_ref of string
[@@deriving show { with_path = false }, eq]

type enum_decl = {
  enum_scope : string option;  (** enclosing [namespace]/[class] name *)
  enum_name : string;
  members : (string * member_init) list;
}
[@@deriving show { with_path = false }, eq]

type h_decl =
  | Class_decl of string * enum_decl list  (** class name + nested enums *)
  | Enum_top of enum_decl
  | Global_decl of string * string  (** type, name — [extern unsigned OperandType;] *)
[@@deriving show { with_path = false }, eq]

type reloc = { reloc_name : string; reloc_value : int }
[@@deriving show { with_path = false }, eq]
