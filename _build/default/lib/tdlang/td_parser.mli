(** Parser for the TableGen-like [.td] record format.

    Grammar subset:
    {v
    class Name { ... ignored prototype fields ... }
    def Name : Parent {
      let Field = "string" | 123 | Identifier | [v, v, ...];
    }
    v} *)

exception Error of string

val parse : string -> Td_ast.record list
(** Records in file order; [class] prototypes contribute no records but
    their names are returned by {!class_names}. @raise Error. *)

val class_names : string -> string list
(** Names introduced by [class] declarations in a [.td] source. *)

val classes : string -> (string * string list) list
(** [class] declarations with their prototype field names; field names are
    the "global variables" (e.g. [Name], [OperandType]) that feed the
    paper's PropList. *)
