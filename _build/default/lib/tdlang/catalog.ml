let src = Logs.Src.create "vega.tdlang" ~doc:"Target-description catalog"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  classes : (string, string) Hashtbl.t;  (* name -> path *)
  globals : (string, string) Hashtbl.t;
  enums : (string, string) Hashtbl.t;  (* enum name -> path *)
  enum_members_by_enum : (string, string list) Hashtbl.t;  (* enum -> members *)
  member_enum : (string, string * string) Hashtbl.t;  (* member -> enum, path *)
  word_index : (string, string list) Hashtbl.t;  (* word -> paths (rev) *)
  assigns : (string * string * string) list ref;  (* field, value, path *)
  recs : (string * Td_ast.record) list ref;
  enum_decls : (string * Td_ast.enum_decl) list ref;
  resolved : (string, int) Hashtbl.t;  (* "Scope::member" -> value *)
  mutable next_ordinal : int;  (* fallback numbering across enums *)
}

let empty () =
  {
    classes = Hashtbl.create 64;
    globals = Hashtbl.create 64;
    enums = Hashtbl.create 64;
    enum_members_by_enum = Hashtbl.create 64;
    member_enum = Hashtbl.create 256;
    word_index = Hashtbl.create 1024;
    assigns = ref [];
    recs = ref [];
    enum_decls = ref [];
    resolved = Hashtbl.create 256;
    next_ordinal = 1000;
  }

let index_words t path content =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun w ->
      if not (Hashtbl.mem seen w) then begin
        Hashtbl.add seen w ();
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.word_index w) in
        Hashtbl.replace t.word_index w (path :: prev)
      end)
    (Td_lex.words content)

(* Resolve member initializers to ints. Sequential within an enum;
   references look up previously resolved members (qualified first). *)
let resolve_enum t path (e : Td_ast.enum_decl) =
  t.enum_decls := (path, e) :: !(t.enum_decls);
  let scope_prefix =
    match e.enum_scope with Some s -> s ^ "::" | None -> e.enum_name ^ "::"
  in
  Hashtbl.replace t.enums e.enum_name path;
  Hashtbl.replace t.enum_members_by_enum e.enum_name (List.map fst e.members);
  let counter = ref None in
  List.iter
    (fun (name, init) ->
      let value =
        match init with
        | Td_ast.Init_int n -> n
        | Td_ast.Init_ref r -> (
            match Hashtbl.find_opt t.resolved r with
            | Some v -> v
            | None -> (
                match Hashtbl.find_opt t.resolved (scope_prefix ^ r) with
                | Some v -> v
                | None ->
                    t.next_ordinal <- t.next_ordinal + 100;
                    t.next_ordinal))
        | Td_ast.Init_none -> (
            match !counter with
            | Some prev -> prev + 1
            | None ->
                t.next_ordinal <- t.next_ordinal + 100;
                t.next_ordinal)
      in
      counter := Some value;
      Hashtbl.replace t.resolved (scope_prefix ^ name) value;
      if not (Hashtbl.mem t.resolved name) then Hashtbl.replace t.resolved name value;
      if not (Hashtbl.mem t.member_enum name) then
        Hashtbl.add t.member_enum name (e.enum_name, path))
    e.members

let ingest_h t path content =
  match H_parser.parse content with
  | decls ->
      List.iter
        (fun d ->
          match d with
          | Td_ast.Class_decl (name, enums) ->
              if not (Hashtbl.mem t.classes name) then Hashtbl.add t.classes name path;
              List.iter (resolve_enum t path) enums
          | Td_ast.Enum_top e -> resolve_enum t path e
          | Td_ast.Global_decl (_, name) ->
              if not (Hashtbl.mem t.globals name) then Hashtbl.add t.globals name path)
        decls
  | exception H_parser.Error msg -> Log.warn (fun m -> m "%s: %s" path msg)

let ingest_td t path content =
  match (Td_parser.parse content, Td_parser.classes content) with
  | records, classes ->
      List.iter
        (fun (cname, fields) ->
          if not (Hashtbl.mem t.classes cname) then Hashtbl.add t.classes cname path;
          List.iter
            (fun f -> if not (Hashtbl.mem t.globals f) then Hashtbl.add t.globals f path)
            fields)
        classes;
      List.iter
        (fun (r : Td_ast.record) ->
          t.recs := (path, r) :: !(t.recs);
          List.iter
            (fun (field, v) ->
              match v with
              | Td_ast.Vstr s -> t.assigns := (field, s, path) :: !(t.assigns)
              | Td_ast.Vint n ->
                  t.assigns := (field, string_of_int n, path) :: !(t.assigns)
              | Td_ast.Vid _ -> ()
              | Td_ast.Vlist vs ->
                  List.iter
                    (function
                      | Td_ast.Vstr s -> t.assigns := (field, s, path) :: !(t.assigns)
                      | Td_ast.Vint n ->
                          t.assigns :=
                            (field, string_of_int n, path) :: !(t.assigns)
                      | Td_ast.Vid _ | Td_ast.Vlist _ -> ())
                    vs)
            r.fields)
        records
  | exception Td_parser.Error msg -> Log.warn (fun m -> m "%s: %s" path msg)

(* .def relocations form the pseudo-enum "ELFReloc"; qualified members
   keep the "ELF::" prefix used by the source code. *)
let ingest_def t path content =
  match Def_parser.parse content with
  | relocs ->
      Hashtbl.replace t.enums "ELFReloc" path;
      let names = List.map (fun (r : Td_ast.reloc) -> r.reloc_name) relocs in
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt t.enum_members_by_enum "ELFReloc")
      in
      Hashtbl.replace t.enum_members_by_enum "ELFReloc" (prev @ names);
      List.iter
        (fun (r : Td_ast.reloc) ->
          Hashtbl.replace t.resolved ("ELF::" ^ r.reloc_name) r.reloc_value;
          if not (Hashtbl.mem t.resolved r.reloc_name) then
            Hashtbl.replace t.resolved r.reloc_name r.reloc_value;
          if not (Hashtbl.mem t.member_enum r.reloc_name) then
            Hashtbl.add t.member_enum r.reloc_name ("ELFReloc", path))
        relocs
  | exception Def_parser.Error msg -> Log.warn (fun m -> m "%s: %s" path msg)

let build vfs dirs =
  let t = empty () in
  let files = Vfs.files_under_dirs vfs dirs in
  List.iter
    (fun (path, content) ->
      index_words t path content;
      if Filename.check_suffix path ".td" then ingest_td t path content
      else if Filename.check_suffix path ".h" then ingest_h t path content
      else if Filename.check_suffix path ".def" then ingest_def t path content)
    files;
  t

let prop_candidates t =
  let names = Hashtbl.create 64 in
  let collect tbl = Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) tbl in
  collect t.classes;
  collect t.enums;
  collect t.globals;
  Hashtbl.fold (fun k () acc -> k :: acc) names [] |> List.sort compare

let is_prop t name =
  Hashtbl.mem t.classes name || Hashtbl.mem t.enums name || Hashtbl.mem t.globals name

let find_word t w =
  Option.value ~default:[] (Hashtbl.find_opt t.word_index w) |> List.sort compare

let assignments t = List.rev !(t.assigns)

let assignments_of t field =
  List.filter_map
    (fun (f, v, p) -> if f = field then Some (v, p) else None)
    (assignments t)

let enum_of_member t m = Hashtbl.find_opt t.member_enum m

let members_of_enum t e =
  Option.value ~default:[] (Hashtbl.find_opt t.enum_members_by_enum e)

let enum_path t e = Hashtbl.find_opt t.enums e

let resolved_members t =
  Hashtbl.fold
    (fun k v acc -> if String.contains k ':' then (k, v) :: acc else acc)
    t.resolved []
  |> List.sort compare

let member_value t m = Hashtbl.find_opt t.resolved m
let records t = List.rev !(t.recs)
let enum_decls t = List.rev !(t.enum_decls)

let record_field t ~record ~field =
  List.find_map
    (fun (_, (r : Td_ast.record)) ->
      if r.rec_name = record then List.assoc_opt field r.fields else None)
    (records t)

let global_path t name =
  match Hashtbl.find_opt t.globals name with
  | Some p -> Some p
  | None -> (
      match Hashtbl.find_opt t.classes name with
      | Some p -> Some p
      | None -> Hashtbl.find_opt t.enums name)
