lib/tdlang/h_parser.pp.mli: Td_ast
