lib/tdlang/td_parser.pp.mli: Td_ast
