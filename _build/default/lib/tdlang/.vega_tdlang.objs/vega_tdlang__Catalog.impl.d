lib/tdlang/catalog.pp.ml: Def_parser Filename H_parser Hashtbl List Logs Option String Td_ast Td_lex Td_parser Vfs
