lib/tdlang/td_lex.pp.ml: Buffer List Printf String
