lib/tdlang/h_parser.pp.ml: Array List Printf String Td_ast Td_lex
