lib/tdlang/td_lex.pp.mli:
