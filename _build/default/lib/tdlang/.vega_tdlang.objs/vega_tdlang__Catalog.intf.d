lib/tdlang/catalog.pp.mli: Td_ast Vfs
