lib/tdlang/def_parser.pp.mli: Td_ast
