lib/tdlang/vfs.pp.ml: Hashtbl List Printf String
