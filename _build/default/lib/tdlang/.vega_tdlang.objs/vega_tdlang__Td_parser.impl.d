lib/tdlang/td_parser.pp.ml: Array List Printf String Td_ast Td_lex
