lib/tdlang/vfs.pp.mli:
