lib/tdlang/def_parser.pp.ml: Array List Td_ast Td_lex
