lib/tdlang/td_ast.pp.ml: List Ppx_deriving_runtime
