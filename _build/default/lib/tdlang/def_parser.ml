exception Error of string

let parse src =
  let toks = Array.of_list (Td_lex.tokenize src) in
  let n = Array.length toks in
  let pos = ref 0 in
  let out = ref [] in
  while !pos < n do
    match toks.(!pos) with
    | Td_lex.Word "ELF_RELOC" ->
        if
          !pos + 5 < n
          &&
          match (toks.(!pos + 1), toks.(!pos + 3), toks.(!pos + 5)) with
          | Td_lex.Punct "(", Td_lex.Punct ",", Td_lex.Punct ")" -> true
          | _ -> false
        then begin
          (match (toks.(!pos + 2), toks.(!pos + 4)) with
          | Td_lex.Word reloc_name, Td_lex.Num reloc_value ->
              out := { Td_ast.reloc_name; reloc_value } :: !out
          | _ -> raise (Error "malformed ELF_RELOC entry"));
          pos := !pos + 6
        end
        else raise (Error "malformed ELF_RELOC entry")
    | _ -> raise (Error "expected ELF_RELOC")
  done;
  List.rev !out
