type tok = Word of string | Num of int | Str of string | Punct of string

let is_word_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_word_char c = is_word_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr pos
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      pos := !pos + 2;
      while
        !pos + 1 < n && not (src.[!pos] = '*' && src.[!pos + 1] = '/')
      do
        incr pos
      done;
      pos := min n (!pos + 2)
    end
    else if c = '#' then
      (* preprocessor-ish lines in .h/.def: skip to end of line *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if is_word_start c then begin
      let start = !pos in
      while !pos < n && is_word_char src.[!pos] do
        incr pos
      done;
      emit (Word (String.sub src start (!pos - start)))
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && !pos + 1 < n && (src.[!pos + 1] = 'x' || src.[!pos + 1] = 'X') then begin
        pos := !pos + 2;
        while
          !pos < n
          && (is_digit src.[!pos]
             || (src.[!pos] >= 'a' && src.[!pos] <= 'f')
             || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))
        do
          incr pos
        done
      end
      else
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
      let lit = String.sub src start (!pos - start) in
      emit (Num (int_of_string lit))
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      while !pos < n && src.[!pos] <> '"' do
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      incr pos;
      emit (Str (Buffer.contents buf))
    end
    else begin
      (* punct: greedy two-char for "::", otherwise single char *)
      if c = ':' && !pos + 1 < n && src.[!pos + 1] = ':' then begin
        emit (Punct "::");
        pos := !pos + 2
      end
      else begin
        emit (Punct (String.make 1 c));
        incr pos
      end
    end
  done;
  List.rev !toks

let words src =
  List.filter_map (function Word w -> Some w | Num _ | Str _ | Punct _ -> None)
    (tokenize src)

let to_string = function
  | Word w -> w
  | Num n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Punct p -> p
