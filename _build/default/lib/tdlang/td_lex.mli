(** Shared word-level tokenizer for target description files (.td, .h,
    .def).

    Algorithm 1 performs its searches "using string comparisons ... on
    token sequences of the files"; this is that tokenizer. It is
    deliberately more forgiving than {!Vega_srclang.Lexer}: any text in
    the description-file formats lexes. *)

type tok =
  | Word of string  (** identifier-like *)
  | Num of int
  | Str of string  (** double-quoted *)
  | Punct of string  (** any other non-space glyph run, e.g. ["::"], ["{"] *)

val tokenize : string -> tok list

val words : string -> string list
(** Just the [Word] payloads, in order. *)

val to_string : tok -> string
