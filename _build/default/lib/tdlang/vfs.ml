type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 256
let add t ~path content = Hashtbl.replace t path content
let read t path = Hashtbl.find_opt t path

let read_exn t path =
  match read t path with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Vfs.read_exn: no file %s" path)

let files_under t dir =
  let prefix = dir ^ "/" in
  Hashtbl.fold
    (fun path content acc ->
      if path = dir || String.starts_with ~prefix path then (path, content) :: acc
      else acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let files_under_dirs t dirs =
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun d ->
      List.filter
        (fun (p, _) ->
          if Hashtbl.mem seen p then false
          else begin
            Hashtbl.add seen p ();
            true
          end)
        (files_under t d))
    dirs

let mem t path = Hashtbl.mem t path
let size t = Hashtbl.length t

let llvmdirs = [ "llvm/CodeGen"; "llvm/MC"; "llvm/BinaryFormat"; "llvm/Target" ]

(* The ELFRelocs family follows LLVM's per-target naming convention;
   restricting the search to the target's own .def file is how VEGA
   "locates corresponding files for new targets" (Sec. 2.3). *)
let tgtdirs target =
  [ "lib/Target/" ^ target; "llvm/BinaryFormat/ELFRelocs/" ^ target ^ ".def" ]
