(** Index over a directory set of a virtual file tree.

    The catalog answers the queries of the paper's Algorithm 1:
    - PropCandidateSet(LLVMDIRs): class names, enum names and global
      variable names declared under a directory family;
    - "tok appears under TGTDIRs" (word-level occurrence, with file);
    - "assignment tok' = str under TGTDIRs" (string-valued record fields);
    - "tok appears as a member of an enum tok'";
    - resolved numeric values of every qualified enum member, which also
      seed the BackendC interpreter environment. *)

type t

val build : Vfs.t -> string list -> t
(** Index all files under the given roots. [.td], [.h] and [.def] files
    are parsed structurally; any other extension is indexed at the word
    level only. Files are processed in sorted path order, so enum-member
    numbering is deterministic. Parse failures in individual files are
    logged and skipped (the corpus should never produce them). *)

val prop_candidates : t -> string list
(** Sorted class names + enum names + global (record prototype field /
    extern) names — the paper's PropList. *)

val is_prop : t -> string -> bool

val find_word : t -> string -> string list
(** Files (sorted paths) whose word tokens contain the given word. *)

val assignments : t -> (string * string * string) list
(** All [(field, value, path)] for string-valued fields [let field =
    "value";] in .td records. *)

val assignments_of : t -> string -> (string * string) list
(** [(value, path)] pairs for one field name. *)

val enum_of_member : t -> string -> (string * string) option
(** [enum_of_member t "fixup_arm_movt_hi16"] = [Some (enum_name, path)]
    when the word is a member of a parsed enum ([.def] relocations count
    as members of the pseudo-enum ["ELF"]). *)

val members_of_enum : t -> string -> string list
(** Member names of the enum (unqualified), in declaration order. *)

val enum_path : t -> string -> string option
(** File where the enum (or pseudo-enum) is declared. *)

val resolved_members : t -> (string * int) list
(** Every qualified member ["Scope::member"] (or ["Enum::member"] when
    unscoped) with its resolved numeric value. *)

val member_value : t -> string -> int option
(** Resolved value of a qualified (or unique unqualified) member name. *)

val records : t -> (string * Td_ast.record) list
(** [(path, record)] for every .td record. *)

val enum_decls : t -> (string * Td_ast.enum_decl) list
(** [(path, decl)] for every parsed enum, with raw member initializers —
    needed to follow the paper's "Fixups correlates with MCFixupKind via
    FirstTargetFixupKind" identified-site chain. *)

val record_field : t -> record:string -> field:string -> Td_ast.value option

val global_path : t -> string -> string option
(** Declaration site of a global/class/enum name, if declared here. *)
