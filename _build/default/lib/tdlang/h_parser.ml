exception Error of string

type st = { toks : Td_lex.tok array; mutable pos : int }

let fail st msg =
  let near =
    let lo = max 0 (st.pos - 2) and hi = min (Array.length st.toks) (st.pos + 3) in
    String.concat " "
      (Array.to_list (Array.map Td_lex.to_string (Array.sub st.toks lo (hi - lo))))
  in
  raise (Error (Printf.sprintf "%s (near: %s)" msg near))

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None
let advance st = st.pos <- st.pos + 1

let expect_punct st p =
  match peek st with
  | Some (Td_lex.Punct q) when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let word st =
  match peek st with
  | Some (Td_lex.Word w) ->
      advance st;
      w
  | _ -> fail st "expected identifier"

let accept_punct st p =
  match peek st with
  | Some (Td_lex.Punct q) when q = p ->
      advance st;
      true
  | _ -> false

(* enum E { a, b = 3, c = Ref }  — cursor after "enum" *)
let parse_enum st scope : Td_ast.enum_decl =
  let enum_name = word st in
  expect_punct st "{";
  let rec members acc =
    match peek st with
    | Some (Td_lex.Punct "}") ->
        advance st;
        List.rev acc
    | Some (Td_lex.Word name) ->
        advance st;
        let init =
          if accept_punct st "=" then
            match peek st with
            | Some (Td_lex.Num n) ->
                advance st;
                Td_ast.Init_int n
            | Some (Td_lex.Word r) ->
                advance st;
                (* allow qualified refs A::b *)
                let r = ref r in
                while accept_punct st "::" do
                  r := !r ^ "::" ^ word st
                done;
                Td_ast.Init_ref !r
            | _ -> fail st "expected enum initializer"
          else Td_ast.Init_none
        in
        let _ = accept_punct st "," in
        members ((name, init) :: acc)
    | _ -> fail st "expected enum member or '}'"
  in
  let members = members [] in
  let _ = accept_punct st ";" in
  { Td_ast.enum_scope = scope; enum_name; members }

let skip_to_semi_balanced st =
  (* Skip a member declaration inside a class body up to its ';',
     balancing braces (for inline method bodies). *)
  let depth = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (Td_lex.Punct "{") ->
        incr depth;
        advance st
    | Some (Td_lex.Punct "}") ->
        if !depth = 0 then continue_ := false
        else begin
          decr depth;
          advance st;
          (* method body followed by no ';' ends the member *)
          if !depth = 0 then continue_ := false
        end
    | Some (Td_lex.Punct ";") when !depth = 0 ->
        advance st;
        continue_ := false
    | Some _ -> advance st
    | None -> continue_ := false
  done

let rec parse_decls st scope acc =
  match peek st with
  | None -> List.rev acc
  | Some (Td_lex.Punct "}") -> List.rev acc
  | Some (Td_lex.Word "namespace") ->
      advance st;
      let n = word st in
      expect_punct st "{";
      let inner = parse_decls st (Some n) [] in
      expect_punct st "}";
      let _ = accept_punct st ";" in
      parse_decls st scope (List.rev_append (List.rev inner) acc)
  | Some (Td_lex.Word "enum") ->
      advance st;
      let e = parse_enum st scope in
      parse_decls st scope (Td_ast.Enum_top e :: acc)
  | Some (Td_lex.Word ("class" | "struct")) ->
      advance st;
      let name = word st in
      (* optional base-class clause *)
      if accept_punct st ":" then begin
        let rec skip_bases () =
          match peek st with
          | Some (Td_lex.Punct "{") | None -> ()
          | Some _ ->
              advance st;
              skip_bases ()
        in
        skip_bases ()
      end;
      if accept_punct st ";" then parse_decls st scope (Td_ast.Class_decl (name, []) :: acc)
      else begin
        expect_punct st "{";
        let enums = ref [] in
        let rec body () =
          match peek st with
          | Some (Td_lex.Punct "}") ->
              advance st;
              let _ = accept_punct st ";" in
              ()
          | Some (Td_lex.Word "enum") ->
              advance st;
              enums := parse_enum st (Some name) :: !enums;
              body ()
          | Some (Td_lex.Word ("public" | "private" | "protected")) ->
              advance st;
              let _ = accept_punct st ":" in
              body ()
          | Some _ ->
              skip_to_semi_balanced st;
              body ()
          | None -> fail st "unterminated class body"
        in
        body ();
        parse_decls st scope (Td_ast.Class_decl (name, List.rev !enums) :: acc)
      end
  | Some (Td_lex.Word "extern") ->
      advance st;
      let ty = word st in
      let name = word st in
      expect_punct st ";";
      parse_decls st scope (Td_ast.Global_decl (ty, name) :: acc)
  | Some t -> fail st (Printf.sprintf "unexpected %S" (Td_lex.to_string t))

let parse src =
  let st = { toks = Array.of_list (Td_lex.tokenize src); pos = 0 } in
  let decls = parse_decls st None [] in
  if st.pos <> Array.length st.toks then fail st "trailing tokens" else decls
