(** Virtual file tree holding LLVM-provided code and target description
    files.

    The paper's Algorithm 1 searches two directory families:
    LLVMDIRs = llvm/CodeGen, llvm/MC, llvm/BinaryFormat, llvm/Target and
    TGTDIRs = lib/Target/<Target>, llvm/BinaryFormat/ELFRelocs. The corpus
    generator renders files into this tree; feature selection reads them
    back as text, so the pipeline genuinely runs off description files. *)

type t

val create : unit -> t
val add : t -> path:string -> string -> unit
(** Register (or overwrite) a file. Paths use ['/'] separators. *)

val read : t -> string -> string option
val read_exn : t -> string -> string

val files_under : t -> string -> (string * string) list
(** [files_under t dir] lists [(path, contents)] of files whose path has
    [dir ^ "/"] as a prefix (or equals [dir]), sorted by path. *)

val files_under_dirs : t -> string list -> (string * string) list
(** Union of {!files_under} over several roots, deduplicated. *)

val mem : t -> string -> bool
val size : t -> int

val llvmdirs : string list
(** The paper's LLVMDIRs constant. *)

val tgtdirs : string -> string list
(** [tgtdirs target] — the paper's TGTDIRs for one target. *)
