(** Parser for X-macro [.def] files, e.g.
    llvm/BinaryFormat/ELFRelocs/ARM.def:
    {v
    ELF_RELOC(R_ARM_NONE, 0x00)
    ELF_RELOC(R_ARM_PC24, 0x01)
    v} *)

exception Error of string

val parse : string -> Td_ast.reloc list
(** @raise Error on malformed input. *)
