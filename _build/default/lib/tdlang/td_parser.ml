exception Error of string

type st = { toks : Td_lex.tok array; mutable pos : int }

let fail st msg =
  let near =
    let lo = max 0 (st.pos - 2) and hi = min (Array.length st.toks) (st.pos + 3) in
    String.concat " "
      (Array.to_list (Array.map Td_lex.to_string (Array.sub st.toks lo (hi - lo))))
  in
  raise (Error (Printf.sprintf "%s (near: %s)" msg near))

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None
let advance st = st.pos <- st.pos + 1

let expect_punct st p =
  match peek st with
  | Some (Td_lex.Punct q) when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let word st =
  match peek st with
  | Some (Td_lex.Word w) ->
      advance st;
      w
  | _ -> fail st "expected identifier"

let rec parse_value st : Td_ast.value =
  match peek st with
  | Some (Td_lex.Str s) ->
      advance st;
      Td_ast.Vstr s
  | Some (Td_lex.Num n) ->
      advance st;
      Td_ast.Vint n
  | Some (Td_lex.Punct "-") ->
      advance st;
      (match peek st with
      | Some (Td_lex.Num n) ->
          advance st;
          Td_ast.Vint (-n)
      | _ -> fail st "expected number after '-'")
  | Some (Td_lex.Word w) ->
      advance st;
      Td_ast.Vid w
  | Some (Td_lex.Punct "[") ->
      advance st;
      let rec elems acc =
        match peek st with
        | Some (Td_lex.Punct "]") ->
            advance st;
            List.rev acc
        | _ ->
            let v = parse_value st in
            (match peek st with
            | Some (Td_lex.Punct ",") -> advance st
            | _ -> ());
            elems (v :: acc)
      in
      Td_ast.Vlist (elems [])
  | _ -> fail st "expected value"

(* class bodies declare typed prototype fields: [string Name = "";]
   These names are the "global variables" of the paper's PropList. *)
let parse_class_fields st =
  expect_punct st "{";
  let rec loop acc =
    match peek st with
    | Some (Td_lex.Punct "}") ->
        advance st;
        List.rev acc
    | Some (Td_lex.Word ("string" | "int" | "bit" | "bits" | "code" | "list")) ->
        advance st;
        (* optional generic suffix like list<string> or bits<4> *)
        (if
           match peek st with Some (Td_lex.Punct "<") -> true | _ -> false
         then begin
           advance st;
           let rec close () =
             match peek st with
             | Some (Td_lex.Punct ">") -> advance st
             | Some _ ->
                 advance st;
                 close ()
             | None -> fail st "unterminated generic"
           in
           close ()
         end);
        let name = word st in
        let _ =
          match peek st with
          | Some (Td_lex.Punct "=") ->
              advance st;
              ignore (parse_value st)
          | _ -> ()
        in
        expect_punct st ";";
        loop (name :: acc)
    | _ -> fail st "expected field declaration or '}'"
  in
  loop []

let parse_fields st =
  expect_punct st "{";
  let rec loop acc =
    match peek st with
    | Some (Td_lex.Punct "}") ->
        advance st;
        List.rev acc
    | Some (Td_lex.Word "let") ->
        advance st;
        let name = word st in
        expect_punct st "=";
        let v = parse_value st in
        expect_punct st ";";
        loop ((name, v) :: acc)
    | _ -> fail st "expected 'let' or '}'"
  in
  loop []

let parse_all src =
  let st = { toks = Array.of_list (Td_lex.tokenize src); pos = 0 } in
  let records = ref [] and classes = ref [] in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some (Td_lex.Word "class") ->
        advance st;
        let name = word st in
        let fields =
          match peek st with
          | Some (Td_lex.Punct "{") -> parse_class_fields st
          | _ -> []
        in
        classes := (name, fields) :: !classes;
        (match peek st with
        | Some (Td_lex.Punct ";") -> advance st
        | _ -> ());
        loop ()
    | Some (Td_lex.Word "def") ->
        advance st;
        let rec_name = word st in
        expect_punct st ":";
        let rec_class = word st in
        let fields = parse_fields st in
        records := { Td_ast.rec_name; rec_class; fields } :: !records;
        loop ()
    | Some t -> fail st (Printf.sprintf "unexpected %S at top level" (Td_lex.to_string t))
  in
  loop ();
  (List.rev !records, List.rev !classes)

let parse src = fst (parse_all src)
let classes src = snd (parse_all src)
let class_names src = List.map fst (classes src)
