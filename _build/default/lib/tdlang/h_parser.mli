(** Parser for the C-header subset used by target description [.h] files
    (e.g. ARMFixupKinds.h) and by the LLVM-provided headers under
    LLVMDIRs (e.g. MCFixup.h, MCExpr.h).

    Recognized declarations:
    {v
    namespace N { enum E { a, b = 3, c = SomeRef }; }
    class C { enum E { ... }; };     // methods/fields are skipped
    enum E { ... };
    extern unsigned G;
    v} *)

exception Error of string

val parse : string -> Td_ast.h_decl list
(** @raise Error on malformed input. *)
