lib/mc/mcinst.pp.ml: List Ppx_deriving_runtime
