(** Machine-code layer: target-neutral machine instructions, symbol
    references, fixups and relocation records — the data the EMI hooks
    manipulate. *)

(** Flavour of a symbol reference on an operand; drives which fixup kind
    the emitter requests ([getHiFixup], [getLoFixup], ...). *)
type sym_kind =
  | Sym_hi  (** upper part of an absolute address *)
  | Sym_lo  (** lower part of an absolute address *)
  | Sym_abs  (** full-width data word *)
[@@deriving show { with_path = false }, eq]

type operand =
  | Oreg of int
  | Oimm of int
  | Olabel of string  (** branch / call target *)
  | Osym of string * sym_kind  (** data symbol *)
[@@deriving show { with_path = false }, eq]

type inst = { opcode : int; ops : operand list }
[@@deriving show { with_path = false }, eq]

type mblock = { mlabel : string; mutable minsts : inst list }
[@@deriving show { with_path = false }]

type mfunc = {
  mname : string;
  mutable mblocks : mblock list;
  mutable frame_size : int;  (** bytes, set by register allocation *)
}
[@@deriving show { with_path = false }]

type fixup = {
  fx_offset : int;  (** byte offset of the instruction in the section *)
  fx_kind : int;  (** target fixup enum value *)
  fx_sym : string;
  fx_addend : int;
}
[@@deriving show { with_path = false }, eq]

type reloc = {
  r_offset : int;
  r_type : int;  (** ELF relocation type value *)
  r_sym : string;
}
[@@deriving show { with_path = false }, eq]

(** Final object: encoded text section plus data and relocations. *)
type obj = {
  text : int array;  (** encoded 32-bit instruction words, fixups applied *)
  text_raw : int array;
      (** pre-fixup words — what a disassembler of the relocatable object
          sees (objdump-style) *)
  data : int array;
  relocs : reloc list;
  sym_addrs : (string * int) list;  (** resolved symbol addresses *)
}

let mk_inst opcode ops = { opcode; ops }

let iter_insts mf f =
  List.iter (fun b -> List.iter (f b) b.minsts) mf.mblocks

let inst_count mf =
  List.fold_left (fun acc b -> acc + List.length b.minsts) 0 mf.mblocks
