(** Token vocabulary with the special tokens of the CodeBE I/O encoding
    (Sec. 3.3): [CLS]/[E2D]/[SEP]/[PAD]/[EOS]/[UNK], the quantized
    confidence-score tokens <cs_0> .. <cs_20>, the placeholder tokens
    <SV0>.., the copy tokens <COPY_0>.. that splice property values into
    the output, and <IDX> for repeated-instance indices. *)

type t

val specials : string list
val pad : int
val cls : int
val e2d : int
val sep : int
val eos : int
val unk : int

val n_score_buckets : int
val score_token : float -> string
(** Quantize a confidence in [0,1] to its bucket token. *)

val score_of_token : string -> float option

val copy_token : int -> string
val copy_of_token : string -> int option
val index_token : string

val build : string list list -> t
(** Build from training token sequences; every token occurring at least
    once is kept, specials first. *)

val size : t -> int
val id : t -> string -> int
(** [unk] for unknown tokens. *)

val token : t -> int -> string
val encode : t -> string list -> int array
val decode : t -> int array -> string list
