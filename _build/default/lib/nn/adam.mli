(** Adam optimizer (Sec. 4.1.2 uses Adam with cross-entropy). *)

type t

val create : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float ->
  Tensor.t list -> t

val step : t -> unit
(** Apply one update from the accumulated gradients, then zero them. *)

val zero_grads : t -> unit
val set_lr : t -> float -> unit
