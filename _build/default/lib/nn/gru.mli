(** GRU encoder-decoder: the "RNN-based VEGA" baseline of Sec. 4.1.2
    (the paper reports UniXcoder beating it by 35.3–77.7% in function
    accuracy). Same I/O contract as {!Transformer}. *)

type config = {
  d_model : int;
  d_hidden : int;
  max_len : int;
  vocab_size : int;
}

val default_config : vocab_size:int -> config

type t

val create : ?seed:int -> config -> t
val params : t -> Tensor.t list
val n_params : t -> int

val loss : t -> src:int array -> tgt:int array -> Tensor.t
(** Teacher-forced cross-entropy; run inside {!Tensor.with_tape}. *)

val train_step : t -> Adam.t -> (int array * int array) list -> float

val generate : t -> src:int array -> ?max_out:int -> unit -> int array * float array
(** Greedy decode from the final encoder state. *)
