lib/nn/transformer.mli: Adam Tensor
