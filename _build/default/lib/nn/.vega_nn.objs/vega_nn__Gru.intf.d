lib/nn/gru.mli: Adam Tensor
