lib/nn/vocab.ml: Array Float Hashtbl List Option Printf String
