lib/nn/adam.ml: Array Tensor
