lib/nn/tensor.mli: Vega_util
