lib/nn/adam.mli: Tensor
