lib/nn/gru.ml: Adam Array Float Layers List Tensor Vega_util Vocab
