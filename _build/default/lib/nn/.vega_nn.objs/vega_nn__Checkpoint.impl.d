lib/nn/checkpoint.ml: Array Char Fun Int64 List Printf String Tensor
