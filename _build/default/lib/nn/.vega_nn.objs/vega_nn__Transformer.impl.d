lib/nn/transformer.ml: Adam Array Float Layers List Tensor Vega_util Vocab
