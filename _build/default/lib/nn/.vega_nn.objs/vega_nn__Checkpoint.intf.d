lib/nn/checkpoint.mli: Tensor
