lib/nn/vocab.mli:
