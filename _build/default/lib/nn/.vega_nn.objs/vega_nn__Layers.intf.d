lib/nn/layers.mli: Tensor Vega_util
