lib/nn/tensor.ml: Array Float Fun List Vega_util
