lib/nn/layers.ml: Array List Tensor
