let n_score_buckets = 21

let score_token s =
  let s = Float.min 1.0 (Float.max 0.0 s) in
  Printf.sprintf "<cs_%d>" (int_of_float (Float.round (s *. 20.0)))

let score_of_token tok =
  if String.length tok > 5 && String.sub tok 0 4 = "<cs_" then
    let inner = String.sub tok 4 (String.length tok - 5) in
    Option.map (fun n -> float_of_int n /. 20.0) (int_of_string_opt inner)
  else None

let copy_token k = Printf.sprintf "<COPY_%d>" k

let copy_of_token tok =
  if String.length tok > 7 && String.sub tok 0 6 = "<COPY_" then
    int_of_string_opt (String.sub tok 6 (String.length tok - 7))
  else None

let index_token = "<IDX>"

let max_copy = 12
let max_sv = 8

let specials =
  [ "<PAD>"; "<CLS>"; "<E2D>"; "<SEP>"; "<EOS>"; "<UNK>"; index_token ]
  @ List.init n_score_buckets (fun i -> Printf.sprintf "<cs_%d>" i)
  @ List.init max_copy copy_token
  @ List.init max_sv (fun i -> Printf.sprintf "<SV%d>" i)

let pad = 0
let cls = 1
let e2d = 2
let sep = 3
let eos = 4
let unk = 5

type t = { tokens : string array; ids : (string, int) Hashtbl.t }

let build seqs =
  let ids = Hashtbl.create 1024 in
  let order = ref [] in
  let add tok =
    if not (Hashtbl.mem ids tok) then begin
      Hashtbl.add ids tok (Hashtbl.length ids);
      order := tok :: !order
    end
  in
  List.iter add specials;
  List.iter (fun seq -> List.iter add seq) seqs;
  { tokens = Array.of_list (List.rev !order); ids }

let size t = Array.length t.tokens
let id t tok = match Hashtbl.find_opt t.ids tok with Some i -> i | None -> unk
let token t i = if i >= 0 && i < Array.length t.tokens then t.tokens.(i) else "<UNK>"
let encode t toks = Array.of_list (List.map (id t) toks)
let decode t ids = Array.to_list (Array.map (token t) ids)
