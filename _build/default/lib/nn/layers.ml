module T = Tensor

type linear = { w : T.t; b : T.t }

let linear rng ~d_in ~d_out = { w = T.param rng d_in d_out; b = T.param rng ~scale:0.01 1 d_out }
let linear_fwd l x = T.add (T.matmul x l.w) l.b
let linear_params l = [ l.w; l.b ]

type norm = { gain : T.t; bias : T.t }

let norm ~d =
  let gain = T.create 1 d (Array.make d 1.0) in
  let bias = T.create 1 d (Array.make d 0.0) in
  (* layernorm params participate in training despite constant init *)
  ( {
      gain = { gain with T.is_param = true };
      bias = { bias with T.is_param = true };
    }
    : norm )

let norm_fwd n x = T.layernorm ~gain:n.gain ~bias:n.bias x
let norm_params n = [ n.gain; n.bias ]

type attention = {
  heads : int;
  d_head : int;
  wq : linear;
  wk : linear;
  wv : linear;
  wo : linear;
}

let attention rng ~d_model ~heads =
  assert (d_model mod heads = 0);
  {
    heads;
    d_head = d_model / heads;
    wq = linear rng ~d_in:d_model ~d_out:d_model;
    wk = linear rng ~d_in:d_model ~d_out:d_model;
    wv = linear rng ~d_in:d_model ~d_out:d_model;
    wo = linear rng ~d_in:d_model ~d_out:d_model;
  }

(* Split head h columns out of a (L x d_model) projection. *)
let head_slice t ~h ~d_head =
  (* implemented as matmul with a constant selector for simplicity would
     be wasteful; instead copy columns via transpose+rows_slice *)
  let tt = T.transpose t in
  let sl = T.rows_slice tt (h * d_head) d_head in
  T.transpose sl

let attention_fwd at ~q_input ~kv_input ~mask =
  let q_all = linear_fwd at.wq q_input in
  let k_all = linear_fwd at.wk kv_input in
  let v_all = linear_fwd at.wv kv_input in
  let outs =
    List.init at.heads (fun h ->
        let q = head_slice q_all ~h ~d_head:at.d_head in
        let k = head_slice k_all ~h ~d_head:at.d_head in
        let v = head_slice v_all ~h ~d_head:at.d_head in
        let scores =
          T.scale (1.0 /. sqrt (float_of_int at.d_head)) (T.matmul q (T.transpose k))
        in
        let weights = T.softmax_rows ?mask scores in
        T.matmul weights v)
  in
  (* concat heads along columns: transpose-concat-transpose *)
  let concat = T.transpose (T.concat_rows (List.map T.transpose outs)) in
  linear_fwd at.wo concat

let attention_params at =
  linear_params at.wq @ linear_params at.wk @ linear_params at.wv
  @ linear_params at.wo

type block = {
  att : attention;
  n1 : norm;
  n2 : norm;
  ff1 : linear;
  ff2 : linear;
}

let encoder_block rng ~d_model ~heads ~d_ff =
  {
    att = attention rng ~d_model ~heads;
    n1 = norm ~d:d_model;
    n2 = norm ~d:d_model;
    ff1 = linear rng ~d_in:d_model ~d_out:d_ff;
    ff2 = linear rng ~d_in:d_ff ~d_out:d_model;
  }

let encoder_fwd b x =
  let a = attention_fwd b.att ~q_input:x ~kv_input:x ~mask:None in
  let x = norm_fwd b.n1 (T.add x a) in
  let ff = linear_fwd b.ff2 (T.gelu (linear_fwd b.ff1 x)) in
  norm_fwd b.n2 (T.add x ff)

let block_params b =
  attention_params b.att @ norm_params b.n1 @ norm_params b.n2
  @ linear_params b.ff1 @ linear_params b.ff2

type dec_block = {
  self_att : attention;
  cross_att : attention;
  dn1 : norm;
  dn2 : norm;
  dn3 : norm;
  dff1 : linear;
  dff2 : linear;
}

let decoder_block rng ~d_model ~heads ~d_ff =
  {
    self_att = attention rng ~d_model ~heads;
    cross_att = attention rng ~d_model ~heads;
    dn1 = norm ~d:d_model;
    dn2 = norm ~d:d_model;
    dn3 = norm ~d:d_model;
    dff1 = linear rng ~d_in:d_model ~d_out:d_ff;
    dff2 = linear rng ~d_in:d_ff ~d_out:d_model;
  }

let decoder_fwd b ~x ~memory =
  let causal i j = j <= i in
  let a = attention_fwd b.self_att ~q_input:x ~kv_input:x ~mask:(Some causal) in
  let x = norm_fwd b.dn1 (T.add x a) in
  let c = attention_fwd b.cross_att ~q_input:x ~kv_input:memory ~mask:None in
  let x = norm_fwd b.dn2 (T.add x c) in
  let ff = linear_fwd b.dff2 (T.gelu (linear_fwd b.dff1 x)) in
  norm_fwd b.dn3 (T.add x ff)

let dec_block_params b =
  attention_params b.self_att @ attention_params b.cross_att @ norm_params b.dn1
  @ norm_params b.dn2 @ norm_params b.dn3 @ linear_params b.dff1
  @ linear_params b.dff2
