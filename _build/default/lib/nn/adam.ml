type t = {
  params : Tensor.t array;
  m : float array array;
  v : float array array;
  mutable lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  mutable t_step : int;
}

let create ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr params =
  let params = Array.of_list params in
  {
    params;
    m = Array.map (fun (p : Tensor.t) -> Array.make (Array.length p.data) 0.0) params;
    v = Array.map (fun (p : Tensor.t) -> Array.make (Array.length p.data) 0.0) params;
    lr;
    beta1;
    beta2;
    eps;
    t_step = 0;
  }

let set_lr t lr = t.lr <- lr

let zero_grads t =
  Array.iter (fun (p : Tensor.t) -> Array.fill p.grad 0 (Array.length p.grad) 0.0) t.params

let step t =
  t.t_step <- t.t_step + 1;
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.t_step) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.t_step) in
  Array.iteri
    (fun k (p : Tensor.t) ->
      let m = t.m.(k) and v = t.v.(k) in
      for i = 0 to Array.length p.data - 1 do
        let g = p.grad.(i) in
        m.(i) <- (t.beta1 *. m.(i)) +. ((1.0 -. t.beta1) *. g);
        v.(i) <- (t.beta2 *. v.(i)) +. ((1.0 -. t.beta2) *. g *. g);
        let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
        p.data.(i) <- p.data.(i) -. (t.lr *. mhat /. (sqrt vhat +. t.eps))
      done)
    t.params;
  zero_grads t
