(** Flat binary checkpointing of parameter lists (and token lists for
    vocabularies). Format: a magic header, then per-tensor dimensions and
    raw little-endian float64 payloads — enough to persist a fine-tuned
    CodeBE between runs. *)

exception Format_error of string

val save : path:string -> ?tokens:string list -> Tensor.t list -> unit

val load : path:string -> Tensor.t list -> string list
(** Load parameters in place (shapes must match the checkpoint) and
    return the stored token list (empty if none was saved).
    @raise Format_error on mismatch or corruption. *)
