exception Format_error of string

let magic = "VEGACKPT1"

let save ~path ?(tokens = []) params =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc (List.length tokens);
      List.iter
        (fun tok ->
          output_binary_int oc (String.length tok);
          output_string oc tok)
        tokens;
      output_binary_int oc (List.length params);
      List.iter
        (fun (p : Tensor.t) ->
          output_binary_int oc p.Tensor.rows;
          output_binary_int oc p.Tensor.cols;
          Array.iter
            (fun v ->
              let bits = Int64.bits_of_float v in
              for k = 0 to 7 do
                output_char oc
                  (Char.chr
                     (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL)))
              done)
            p.Tensor.data)
        params)

let load ~path params =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = really_input_string ic (String.length magic) in
      if buf <> magic then raise (Format_error "bad magic");
      let ntok = input_binary_int ic in
      let tokens =
        List.init ntok (fun _ ->
            let len = input_binary_int ic in
            really_input_string ic len)
      in
      let n = input_binary_int ic in
      if n <> List.length params then
        raise
          (Format_error
             (Printf.sprintf "checkpoint has %d tensors, model has %d" n
                (List.length params)));
      List.iter
        (fun (p : Tensor.t) ->
          let rows = input_binary_int ic and cols = input_binary_int ic in
          if rows <> p.Tensor.rows || cols <> p.Tensor.cols then
            raise
              (Format_error
                 (Printf.sprintf "shape mismatch: %dx%d vs %dx%d" rows cols
                    p.Tensor.rows p.Tensor.cols));
          for i = 0 to (rows * cols) - 1 do
            let bits = ref 0L in
            for k = 0 to 7 do
              let byte = Char.code (input_char ic) in
              bits := Int64.logor !bits (Int64.shift_left (Int64.of_int byte) (8 * k))
            done;
            p.Tensor.data.(i) <- Int64.float_of_bits !bits
          done)
        params;
      tokens)
