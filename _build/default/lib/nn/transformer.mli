(** CodeBE-mini: a from-scratch transformer encoder–decoder.

    Stand-in for UniXcoder (DESIGN.md): token + position embeddings,
    [n_layers] encoder and decoder blocks, tied-free output projection,
    teacher-forced cross-entropy training and greedy decoding that also
    reports per-token probabilities (used for confidence blending). *)

type config = {
  d_model : int;
  heads : int;
  d_ff : int;
  n_layers : int;
  max_len : int;  (** maximum input/output length (paper: 512) *)
  vocab_size : int;
}

val default_config : vocab_size:int -> config

type t

val create : ?seed:int -> config -> t
val config : t -> config
val params : t -> Tensor.t list
val n_params : t -> int

val loss : t -> src:int array -> tgt:int array -> Tensor.t
(** Teacher-forced loss of emitting [tgt] (terminated by EOS internally)
    given [src]. Must run inside {!Tensor.with_tape}. *)

val train_step : t -> Adam.t -> (int array * int array) list -> float
(** Accumulate gradients over the mini-batch, step the optimizer, return
    the mean loss. *)

val generate : t -> src:int array -> ?max_out:int -> unit -> int array * float array
(** Greedy decode: output ids (without EOS) and per-token probabilities. *)
