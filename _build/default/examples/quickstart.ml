(* Quickstart: run VEGA's pipeline end to end on the paper's running
   example — generate RISC-V's getRelocType from its target description
   files, exactly as in Fig. 4.

     dune exec examples/quickstart.exe

   Uses the fast retrieval decoder so it finishes in seconds; pass
   --model to fine-tune the CodeBE transformer first (minutes). *)

let () =
  let use_model = Array.exists (( = ) "--model") Sys.argv in
  print_endline "== VEGA quickstart: generating RISC-V getRelocType ==\n";
  (* Stage 1: Code-Feature Mapping over the training corpus (14 backends) *)
  let prep = Vega.Pipeline.prepare () in
  Printf.printf "prepared %d function templates from %d training backends\n%!"
    (List.length prep.Vega.Pipeline.bundles)
    (List.length Vega_target.Registry.training);
  (* Stage 2: Model Creation *)
  let cfg =
    if use_model then Vega.Pipeline.default_config
    else
      {
        Vega.Pipeline.default_config with
        train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
      }
  in
  let t = Vega.Pipeline.train cfg prep in
  let decoder =
    if use_model then Vega.Pipeline.model_decoder t
    else Vega.Pipeline.retrieval_decoder t
  in
  (* Stage 3: Target-Specific Code Generation for the held-out target *)
  let gf =
    Option.get
      (Vega.Pipeline.generate_function t ~target:"RISCV" ~decoder
         ~fname:"getRelocType")
  in
  Printf.printf "\n-- generated (confidence %.2f) --\n%s\n"
    gf.Vega.Generate.gf_confidence
    (Vega.Generate.source_of gf);
  (* compare against the reference implementation of the base compiler *)
  let spec = Option.get (Vega_corpus.Corpus.find_spec "getRelocType") in
  (match Vega_corpus.Corpus.reference_inlined spec Vega_target.Registry.riscv with
  | Some f ->
      print_endline "-- base-compiler reference --";
      List.iter
        (fun (l : Vega_srclang.Lines.t) -> print_endline l.text)
        (Vega_srclang.Lines.of_func f)
  | None -> ());
  (* per-statement confidence annotations, as the paper shows in Fig. 4(d) *)
  print_endline "\n-- statement confidences --";
  List.iter
    (fun (s : Vega.Generate.gen_stmt) ->
      Printf.printf "  %.2f | %s\n" s.g_score (String.concat " " s.g_tokens))
    gf.Vega.Generate.gf_stmts
