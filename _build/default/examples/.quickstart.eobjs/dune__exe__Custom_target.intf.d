examples/custom_target.mli:
