examples/custom_target.ml: List Printf Vega Vega_corpus Vega_eval Vega_ir Vega_target
