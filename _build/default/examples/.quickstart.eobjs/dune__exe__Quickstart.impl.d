examples/quickstart.ml: Array List Option Printf String Sys Vega Vega_corpus Vega_srclang Vega_target
