examples/compile_and_run.ml: Array List Printf String Sys Vega_backend Vega_corpus Vega_eval Vega_ir Vega_mc Vega_sim Vega_target
