examples/confidence_triage.mli:
