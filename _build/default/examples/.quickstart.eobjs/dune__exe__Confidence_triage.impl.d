examples/confidence_triage.ml: Array List Printf String Sys Vega Vega_target
