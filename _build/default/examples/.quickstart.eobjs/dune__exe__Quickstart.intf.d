examples/quickstart.mli:
