(* The paper's headline scenario: you design a new processor, write only
   its target description files, and VEGA produces the compiler backend.

   Here we define "XVEC", a fresh RISC-style core with a SIMD extension,
   register its profile (which only drives the rendering of its .td/.h
   description files — generation reads those files, never the profile),
   and generate + regression-test its backend.

     dune exec examples/custom_target.exe *)

module P = Vega_target.Profile
module D = Vega_target.Defs

let xvec =
  D.make ~name:"XVEC" ~endian:P.Little ~comment_char:"#"
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_xvec_br14" ~bits:14 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_XVEC_BR14" ~ra:"R_XVEC_BR14";
        D.fx P.Fk_jump ~name:"fixup_xvec_jmp24" ~bits:24 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_XVEC_JMP24" ~ra:"R_XVEC_JMP24";
        D.fx P.Fk_call ~name:"fixup_xvec_call" ~bits:24 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_XVEC_CALL" ~ra:"R_XVEC_CALL";
        D.fx P.Fk_hi ~name:"fixup_xvec_hi20" ~bits:20 ~offset:12 ~shift:12
          ~pcrel:false ~rp:"R_XVEC_HI20" ~ra:"R_XVEC_HI20";
        D.fx P.Fk_lo ~name:"fixup_xvec_lo12" ~bits:12 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_XVEC_LO12" ~ra:"R_XVEC_LO12";
        D.fx P.Fk_abs_word ~name:"fixup_xvec_word" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_XVEC_REL32" ~ra:"R_XVEC_ABS32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"v" ~count:32 ~sp:2 ~ra:1 ~fp:8 ~zero:0
         ~args:[ 10; 11; 12; 13 ] ~ret:10
         ~callee_saved:[ 18; 19; 20; 21; 22; 23 ] ())
    ~spell:
      (D.spell_map
         [
           ("load", "ldw"); ("store", "stw"); ("jmp", "j"); ("call", "jal");
           ("ret", "jr"); ("li", "movi"); ("vadd", "xv.add"); ("vmul", "xv.mul");
         ])
    ~sched:(D.mk_sched ~issue_width:2 ~load_latency:2 ())
    ~features:(D.mk_features ~has_simd:true ())
    ()

let () =
  print_endline "== generating a backend for a brand-new target (XVEC) ==";
  (* render XVEC's description files into the corpus tree *)
  let corpus = Vega_corpus.Corpus.build () in
  Vega_corpus.Descfiles.render_target corpus.Vega_corpus.Corpus.vfs xvec;
  let prep = Vega.Pipeline.prepare ~corpus () in
  let cfg =
    {
      Vega.Pipeline.default_config with
      train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
    }
  in
  let t = Vega.Pipeline.train cfg prep in
  let decoder = Vega.Pipeline.retrieval_decoder t in
  (* the held-out target only exists as description files from here on *)
  let te =
    Vega_eval.Metrics.evaluate_target t ~decoder xvec
      ~cases:(List.filteri (fun i _ -> i < 8) Vega_ir.Programs.regression)
      ()
  in
  Printf.printf "XVEC backend: %d functions generated, pass@1 accuracy %.1f%%\n"
    (List.length te.Vega_eval.Metrics.te_fns)
    (100.0 *. Vega_eval.Metrics.fn_accuracy te.Vega_eval.Metrics.te_fns);
  List.iter
    (fun (m, fns) ->
      Printf.printf "  %s: %.1f%% of %d functions\n"
        (Vega_target.Module_id.name m)
        (100.0 *. Vega_eval.Metrics.fn_accuracy fns)
        (List.length fns))
    (Vega_eval.Metrics.by_module te);
  (* show the generated SIMD hook, which exists only because XVEC's
     description advertises a vector unit *)
  match
    Vega.Pipeline.generate_function t ~target:"XVEC" ~decoder
      ~fname:"selectVectorOpcode"
  with
  | Some gf ->
      Printf.printf "\n-- generated selectVectorOpcode --\n%s\n"
        (Vega.Generate.source_of gf)
  | None -> print_endline "selectVectorOpcode not generated"
