(* The developer workflow of Sec. 4.2 ("Manual Effort Required for
   VEGA"): generate a whole backend, then use the per-function confidence
   scores to decide what to review first. Low-confidence functions get
   rewritten; high-confidence ones usually need nothing.

     dune exec examples/confidence_triage.exe -- XCore *)

let () =
  let target = if Array.length Sys.argv > 1 then Sys.argv.(1) else "XCore" in
  (match Vega_target.Registry.find target with
  | Some _ -> ()
  | None ->
      Printf.eprintf "unknown target %s\n" target;
      exit 1);
  let prep = Vega.Pipeline.prepare () in
  let cfg =
    {
      Vega.Pipeline.default_config with
      train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
    }
  in
  let t = Vega.Pipeline.train cfg prep in
  let gfs =
    Vega.Pipeline.generate_backend t ~target
      ~decoder:(Vega.Pipeline.retrieval_decoder t)
  in
  let ranked =
    List.sort
      (fun (a : Vega.Generate.gen_func) b ->
        compare a.gf_confidence b.gf_confidence)
      gfs
  in
  Printf.printf "== confidence triage for the generated %s backend ==\n" target;
  Printf.printf "%-8s %-6s %-30s %s\n" "conf" "module" "function" "suggestion";
  List.iter
    (fun (gf : Vega.Generate.gen_func) ->
      let low_stmts =
        List.length
          (List.filter
             (fun (s : Vega.Generate.gen_stmt) ->
               s.g_score < Vega.Confidence.threshold)
             gf.gf_stmts)
      in
      let advice =
        if gf.gf_confidence < 0.5 then "review whole function"
        else if low_stmts > 0 then
          Printf.sprintf "check %d low-confidence statement(s)" low_stmts
        else "likely correct as generated"
      in
      Printf.printf "%-8.2f %-6s %-30s %s\n" gf.gf_confidence
        (Vega_target.Module_id.name gf.gf_module)
        gf.gf_fname advice)
    ranked;
  (* detail view of the least confident function *)
  match ranked with
  | (worst : Vega.Generate.gen_func) :: _ ->
      Printf.printf "\n-- least confident: %s --\n" worst.gf_fname;
      List.iter
        (fun (s : Vega.Generate.gen_stmt) ->
          Printf.printf "  %.2f | %s\n" s.g_score (String.concat " " s.g_tokens))
        worst.gf_stmts
  | [] -> ()
